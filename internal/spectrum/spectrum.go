// Package spectrum models the optical spectrum of a fiber as a grid of
// fixed-width pixels, following FlexWAN's spectrum-sliced optical line
// system (§4.2 of the paper).
//
// The usable long-haul spectrum is the C-band. A pixel-wise wavelength
// selective switch (WSS) slices it into 12.5 GHz pixels (or finer); a
// wavelength occupies a contiguous run of pixels whose total width equals
// its channel spacing. The same pixel interval must be configured on every
// fiber the wavelength traverses (spectrum consistency) and no two
// wavelengths may share a pixel on the same fiber (spectrum conflict).
package spectrum

import (
	"errors"
	"fmt"
	"math"
)

// Standard constants for the C-band and FlexWAN's pixel grid.
const (
	// DefaultPixelGHz is the grid granularity of the pixel-wise WSS.
	DefaultPixelGHz = 12.5

	// CBandGHz is the usable width of the conventional band
	// (roughly 1530–1565 nm, ~4.4 THz; we use the common 4.8 THz
	// flexi-grid figure of 384 × 12.5 GHz).
	CBandGHz = 4800.0

	// DefaultPixels is the number of 12.5 GHz pixels in the C-band.
	DefaultPixels = int(CBandGHz / DefaultPixelGHz)
)

// Grid describes a pixelated spectrum: Pixels slots of PixelGHz each.
type Grid struct {
	PixelGHz float64
	Pixels   int
}

// DefaultGrid returns the C-band sliced at 12.5 GHz: 384 pixels.
func DefaultGrid() Grid {
	return Grid{PixelGHz: DefaultPixelGHz, Pixels: DefaultPixels}
}

// NewGrid builds a grid with the given pixel width covering widthGHz.
// The width is truncated down to a whole number of pixels.
func NewGrid(pixelGHz, widthGHz float64) (Grid, error) {
	if pixelGHz <= 0 {
		return Grid{}, fmt.Errorf("spectrum: pixel width must be positive, got %v", pixelGHz)
	}
	if widthGHz < pixelGHz {
		return Grid{}, fmt.Errorf("spectrum: band width %v GHz smaller than one pixel (%v GHz)", widthGHz, pixelGHz)
	}
	return Grid{PixelGHz: pixelGHz, Pixels: int(widthGHz / pixelGHz)}, nil
}

// WidthGHz returns the total spectrum width covered by the grid.
func (g Grid) WidthGHz() float64 { return float64(g.Pixels) * g.PixelGHz }

// PixelsFor returns the number of contiguous pixels needed to carry a
// channel spacing of spacingGHz. Channel spacings that are not an exact
// multiple of the pixel width are rounded up (the passband must fully
// contain the signal; a smaller passband clips it).
func (g Grid) PixelsFor(spacingGHz float64) (int, error) {
	if spacingGHz <= 0 {
		return 0, fmt.Errorf("spectrum: channel spacing must be positive, got %v", spacingGHz)
	}
	n := int(math.Ceil(spacingGHz/g.PixelGHz - 1e-9))
	if n > g.Pixels {
		return 0, fmt.Errorf("spectrum: channel spacing %v GHz exceeds band width %v GHz", spacingGHz, g.WidthGHz())
	}
	return n, nil
}

// Interval is a half-open pixel range [Start, Start+Count) on a grid —
// the spectrum occupied by one wavelength, or the passband configured on
// a WSS filter port.
type Interval struct {
	Start int // index of the first pixel
	Count int // number of contiguous pixels
}

// End returns the index one past the last pixel.
func (iv Interval) End() int { return iv.Start + iv.Count }

// Overlaps reports whether two intervals share any pixel.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start < other.End() && other.Start < iv.End()
}

// Contains reports whether pixel w falls inside the interval.
func (iv Interval) Contains(w int) bool { return w >= iv.Start && w < iv.End() }

// WidthGHz returns the spectral width of the interval on grid g.
func (iv Interval) WidthGHz(g Grid) float64 { return float64(iv.Count) * g.PixelGHz }

// Valid reports whether the interval lies inside grid g.
func (iv Interval) Valid(g Grid) bool {
	return iv.Start >= 0 && iv.Count > 0 && iv.End() <= g.Pixels
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d)", iv.Start, iv.End())
}

// ErrNoSpectrum is returned when an allocation request cannot be satisfied.
var ErrNoSpectrum = errors.New("spectrum: no contiguous free interval of the requested width")

// Map tracks per-pixel occupancy of a single fiber. The zero value is not
// usable; construct with NewMap.
type Map struct {
	grid Grid
	used []bool
	free int
}

// NewMap returns an all-free occupancy map for grid g.
func NewMap(g Grid) *Map {
	return &Map{grid: g, used: make([]bool, g.Pixels), free: g.Pixels}
}

// Grid returns the grid the map was built on.
func (m *Map) Grid() Grid { return m.grid }

// FreePixels returns the number of unoccupied pixels.
func (m *Map) FreePixels() int { return m.free }

// UsedPixels returns the number of occupied pixels.
func (m *Map) UsedPixels() int { return m.grid.Pixels - m.free }

// Used reports whether pixel w is occupied. Out-of-range pixels are
// reported as occupied (they can never be allocated).
func (m *Map) Used(w int) bool {
	if w < 0 || w >= len(m.used) {
		return true
	}
	return m.used[w]
}

// CanPlace reports whether the interval is entirely free.
func (m *Map) CanPlace(iv Interval) bool {
	if !iv.Valid(m.grid) {
		return false
	}
	for w := iv.Start; w < iv.End(); w++ {
		if m.used[w] {
			return false
		}
	}
	return true
}

// Place marks the interval occupied. It fails if any pixel is already in
// use or the interval is out of range; on failure the map is unchanged.
func (m *Map) Place(iv Interval) error {
	if !iv.Valid(m.grid) {
		return fmt.Errorf("spectrum: interval %v outside grid of %d pixels", iv, m.grid.Pixels)
	}
	if !m.CanPlace(iv) {
		return fmt.Errorf("spectrum: interval %v overlaps an existing allocation: %w", iv, ErrNoSpectrum)
	}
	for w := iv.Start; w < iv.End(); w++ {
		m.used[w] = true
	}
	m.free -= iv.Count
	return nil
}

// Release frees the interval. Releasing pixels that are already free is an
// error: it indicates double-release, which would corrupt accounting.
func (m *Map) Release(iv Interval) error {
	if !iv.Valid(m.grid) {
		return fmt.Errorf("spectrum: interval %v outside grid of %d pixels", iv, m.grid.Pixels)
	}
	for w := iv.Start; w < iv.End(); w++ {
		if !m.used[w] {
			return fmt.Errorf("spectrum: release of free pixel %d in %v", w, iv)
		}
	}
	for w := iv.Start; w < iv.End(); w++ {
		m.used[w] = false
	}
	m.free += iv.Count
	return nil
}

// FirstFit returns the lowest-indexed free interval of count pixels.
func (m *Map) FirstFit(count int) (Interval, error) {
	if count <= 0 || count > m.grid.Pixels {
		return Interval{}, fmt.Errorf("spectrum: invalid interval width %d", count)
	}
	run := 0
	for w := 0; w < m.grid.Pixels; w++ {
		if m.used[w] {
			run = 0
			continue
		}
		run++
		if run == count {
			return Interval{Start: w - count + 1, Count: count}, nil
		}
	}
	return Interval{}, ErrNoSpectrum
}

// BestFit returns the free interval of count pixels inside the smallest
// free run that can hold it (ties broken by lowest start). Best-fit keeps
// large runs intact for future wide channels.
func (m *Map) BestFit(count int) (Interval, error) {
	if count <= 0 || count > m.grid.Pixels {
		return Interval{}, fmt.Errorf("spectrum: invalid interval width %d", count)
	}
	bestStart, bestLen := -1, m.grid.Pixels+1
	w := 0
	for w < m.grid.Pixels {
		if m.used[w] {
			w++
			continue
		}
		start := w
		for w < m.grid.Pixels && !m.used[w] {
			w++
		}
		runLen := w - start
		if runLen >= count && runLen < bestLen {
			bestStart, bestLen = start, runLen
		}
	}
	if bestStart < 0 {
		return Interval{}, ErrNoSpectrum
	}
	return Interval{Start: bestStart, Count: count}, nil
}

// FreeRuns returns the maximal free intervals in ascending order.
func (m *Map) FreeRuns() []Interval {
	var runs []Interval
	w := 0
	for w < m.grid.Pixels {
		if m.used[w] {
			w++
			continue
		}
		start := w
		for w < m.grid.Pixels && !m.used[w] {
			w++
		}
		runs = append(runs, Interval{Start: start, Count: w - start})
	}
	return runs
}

// LargestFreeRun returns the widest contiguous free interval, or a
// zero-count interval when the map is full.
func (m *Map) LargestFreeRun() Interval {
	var best Interval
	for _, r := range m.FreeRuns() {
		if r.Count > best.Count {
			best = r
		}
	}
	return best
}

// Clone returns an independent copy of the map.
func (m *Map) Clone() *Map {
	c := &Map{grid: m.grid, used: make([]bool, len(m.used)), free: m.free}
	copy(c.used, m.used)
	return c
}

// Fragmentation returns 1 − largestFreeRun/freePixels: 0 when all free
// spectrum is contiguous (or the map is full), approaching 1 as the free
// spectrum shatters into small runs.
func (m *Map) Fragmentation() float64 {
	if m.free == 0 {
		return 0
	}
	return 1 - float64(m.LargestFreeRun().Count)/float64(m.free)
}
