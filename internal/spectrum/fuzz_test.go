package spectrum

import "testing"

// FuzzMapOperations drives the occupancy map with arbitrary operation
// streams: accounting must stay consistent and no operation may panic.
func FuzzMapOperations(f *testing.F) {
	f.Add([]byte{1, 4, 0, 2, 8})
	f.Add([]byte{255, 0, 0, 9, 9, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		g := Grid{PixelGHz: 12.5, Pixels: 32}
		m := NewMap(g)
		var live []Interval
		for i := 0; i+1 < len(ops); i += 2 {
			a, b := int(ops[i]), int(ops[i+1])
			switch a % 3 {
			case 0: // place via first fit
				iv, err := m.FirstFit(1 + b%8)
				if err == nil {
					if err := m.Place(iv); err != nil {
						t.Fatalf("Place after FirstFit: %v", err)
					}
					live = append(live, iv)
				}
			case 1: // release a live interval
				if len(live) > 0 {
					idx := b % len(live)
					if err := m.Release(live[idx]); err != nil {
						t.Fatalf("Release live: %v", err)
					}
					live = append(live[:idx], live[idx+1:]...)
				}
			case 2: // arbitrary (possibly invalid) placement attempt
				iv := Interval{Start: a % 40, Count: b % 40}
				_ = m.CanPlace(iv)
				if err := m.Place(iv); err == nil {
					live = append(live, iv)
				}
			}
			sum := 0
			for _, iv := range live {
				sum += iv.Count
			}
			if m.UsedPixels() < sum {
				t.Fatalf("accounting below live set: used %d < %d", m.UsedPixels(), sum)
			}
			if m.FreePixels()+m.UsedPixels() != g.Pixels {
				t.Fatalf("free+used != total")
			}
		}
	})
}
