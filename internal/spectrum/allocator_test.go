package spectrum

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func testGrid() Grid { return Grid{PixelGHz: 12.5, Pixels: 32} }

func TestAllocatorSingleFiber(t *testing.T) {
	a := NewAllocator(testGrid())
	al, err := a.Allocate([]FiberID{"f1"}, 6, FirstFit)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if al.Interval != (Interval{0, 6}) {
		t.Errorf("interval = %v, want [0,6)", al.Interval)
	}
	if a.UsedPixels() != 6 {
		t.Errorf("UsedPixels = %d, want 6", a.UsedPixels())
	}
	if a.UsedGHz() != 75 {
		t.Errorf("UsedGHz = %v, want 75", a.UsedGHz())
	}
	if err := a.Release(al); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if a.UsedPixels() != 0 {
		t.Errorf("UsedPixels after release = %d", a.UsedPixels())
	}
}

func TestAllocatorConsistencyAcrossPath(t *testing.T) {
	a := NewAllocator(testGrid())
	// Occupy [0,4) on f2 only; a path through f1+f2 must skip it on BOTH.
	if err := a.AllocateExact([]FiberID{"f2"}, Interval{0, 4}); err != nil {
		t.Fatalf("seed alloc: %v", err)
	}
	al, err := a.Allocate([]FiberID{"f1", "f2", "f3"}, 4, FirstFit)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if al.Interval.Start != 4 {
		t.Errorf("interval = %v, want start 4 (same slot on every fiber)", al.Interval)
	}
	for _, f := range []FiberID{"f1", "f2", "f3"} {
		m := a.FiberMap(f)
		for w := al.Interval.Start; w < al.Interval.End(); w++ {
			if !m.Used(w) {
				t.Errorf("pixel %d not used on fiber %s", w, f)
			}
		}
	}
}

func TestAllocatorConflict(t *testing.T) {
	a := NewAllocator(testGrid())
	if err := a.AllocateExact([]FiberID{"f1", "f2"}, Interval{8, 4}); err != nil {
		t.Fatalf("first alloc: %v", err)
	}
	err := a.AllocateExact([]FiberID{"f2", "f3"}, Interval{10, 4})
	if !errors.Is(err, ErrNoSpectrum) {
		t.Errorf("conflicting AllocateExact err = %v, want ErrNoSpectrum", err)
	}
	// f3 must be untouched by the failed atomic allocation.
	if a.FiberMap("f3").UsedPixels() != 0 {
		t.Error("failed allocation leaked pixels onto fiber f3")
	}
}

func TestAllocatorAtomicRollback(t *testing.T) {
	a := NewAllocator(testGrid())
	// A path that repeats a fiber cannot place the same interval twice;
	// the allocator must roll back and leave no residue.
	err := a.AllocateExact([]FiberID{"f1", "f1"}, Interval{0, 4})
	if err == nil {
		t.Fatal("AllocateExact with repeated fiber succeeded")
	}
	if a.FiberMap("f1").UsedPixels() != 0 {
		t.Errorf("rollback left %d pixels used", a.FiberMap("f1").UsedPixels())
	}
}

func TestAllocatorEmptyPath(t *testing.T) {
	a := NewAllocator(testGrid())
	if _, err := a.Allocate(nil, 4, FirstFit); err == nil {
		t.Error("Allocate with empty path succeeded")
	}
	if err := a.AllocateExact(nil, Interval{0, 4}); err == nil {
		t.Error("AllocateExact with empty path succeeded")
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := NewAllocator(Grid{PixelGHz: 12.5, Pixels: 8})
	path := []FiberID{"f1"}
	if _, err := a.Allocate(path, 8, FirstFit); err != nil {
		t.Fatalf("filling allocation: %v", err)
	}
	if _, err := a.Allocate(path, 1, FirstFit); !errors.Is(err, ErrNoSpectrum) {
		t.Errorf("allocation on full fiber err = %v, want ErrNoSpectrum", err)
	}
}

func TestAllocatorVerify(t *testing.T) {
	a := NewAllocator(testGrid())
	al1, err := a.Allocate([]FiberID{"f1", "f2"}, 6, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	al2, err := a.Allocate([]FiberID{"f2"}, 4, FirstFit)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify([]Allocation{al1, al2}); err != nil {
		t.Errorf("Verify on consistent state: %v", err)
	}
	// A forged duplicate claim must be caught.
	forged := Allocation{Fibers: []FiberID{"f2"}, Interval: al1.Interval}
	if err := a.Verify([]Allocation{al1, forged}); err == nil {
		t.Error("Verify accepted duplicate pixel ownership")
	}
	// An allocation whose pixels are not marked used must be caught.
	ghost := Allocation{Fibers: []FiberID{"f9"}, Interval: Interval{20, 4}}
	if err := a.Verify([]Allocation{ghost}); err == nil {
		t.Error("Verify accepted unmarked allocation")
	}
}

func TestAllocatorClone(t *testing.T) {
	a := NewAllocator(testGrid())
	if _, err := a.Allocate([]FiberID{"f1"}, 4, FirstFit); err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	if _, err := c.Allocate([]FiberID{"f1"}, 4, FirstFit); err != nil {
		t.Fatal(err)
	}
	if a.UsedPixels() != 4 {
		t.Errorf("clone mutation leaked: original UsedPixels = %d", a.UsedPixels())
	}
	if c.UsedPixels() != 8 {
		t.Errorf("clone UsedPixels = %d, want 8", c.UsedPixels())
	}
}

func TestAllocatorBestFitReducesFragmentation(t *testing.T) {
	// Craft a map with a small and a large free run and verify BestFit
	// picks the small one, preserving the large run for wide channels.
	a := NewAllocator(Grid{PixelGHz: 12.5, Pixels: 32})
	path := []FiberID{"f1"}
	// Runs after seeding: [0,4) free, [4,8) used, [8,32) free.
	if err := a.AllocateExact(path, Interval{4, 4}); err != nil {
		t.Fatal(err)
	}
	al, err := a.Allocate(path, 4, BestFit)
	if err != nil {
		t.Fatal(err)
	}
	if al.Interval != (Interval{0, 4}) {
		t.Errorf("BestFit chose %v, want the tight run [0,4)", al.Interval)
	}
	// FirstFit would have chosen the same here; verify the contrast case:
	a2 := NewAllocator(Grid{PixelGHz: 12.5, Pixels: 32})
	// Runs: [0,24) free, [24,26) used, [26,32) free (len 6).
	if err := a2.AllocateExact(path, Interval{24, 2}); err != nil {
		t.Fatal(err)
	}
	alBF, err := a2.Allocate(path, 6, BestFit)
	if err != nil {
		t.Fatal(err)
	}
	if alBF.Interval != (Interval{26, 6}) {
		t.Errorf("BestFit chose %v, want exact-size run [26,32)", alBF.Interval)
	}
}

// Property: after any random sequence of allocations and releases across
// random multi-fiber paths, Verify succeeds on the live allocation set and
// per-fiber accounting matches the live set exactly.
func TestAllocatorInvariantProperty(t *testing.T) {
	fibers := []FiberID{"a", "b", "c", "d", "e"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator(Grid{PixelGHz: 12.5, Pixels: 48})
		var live []Allocation
		for op := 0; op < 120; op++ {
			if rng.Intn(3) > 0 || len(live) == 0 {
				// Random sub-path of 1–3 distinct fibers.
				n := 1 + rng.Intn(3)
				perm := rng.Perm(len(fibers))[:n]
				path := make([]FiberID, n)
				for i, p := range perm {
					path[i] = fibers[p]
				}
				al, err := a.Allocate(path, 1+rng.Intn(10), Fit(rng.Intn(2)))
				if errors.Is(err, ErrNoSpectrum) {
					continue
				}
				if err != nil {
					return false
				}
				live = append(live, al)
			} else {
				i := rng.Intn(len(live))
				if a.Release(live[i]) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		if a.Verify(live) != nil {
			return false
		}
		// Cross-check per-fiber pixel counts against the live set.
		perFiber := make(map[FiberID]int)
		for _, al := range live {
			for _, f := range al.Fibers {
				perFiber[f] += al.Interval.Count
			}
		}
		for _, f := range fibers {
			if a.FiberMap(f).UsedPixels() != perFiber[f] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
