package spectrum

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultGrid(t *testing.T) {
	g := DefaultGrid()
	if g.Pixels != 384 {
		t.Errorf("DefaultGrid pixels = %d, want 384", g.Pixels)
	}
	if g.WidthGHz() != 4800 {
		t.Errorf("DefaultGrid width = %v GHz, want 4800", g.WidthGHz())
	}
}

func TestNewGrid(t *testing.T) {
	tests := []struct {
		name       string
		pixel, w   float64
		wantPixels int
		wantErr    bool
	}{
		{"standard", 12.5, 4800, 384, false},
		{"fine grid", 6.25, 4800, 768, false},
		{"coarse 75GHz grid", 75, 4800, 64, false},
		{"truncates partial pixel", 12.5, 4805, 384, false},
		{"zero pixel", 0, 4800, 0, true},
		{"negative pixel", -1, 4800, 0, true},
		{"band smaller than pixel", 12.5, 10, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, err := NewGrid(tt.pixel, tt.w)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewGrid(%v,%v) err = %v, wantErr %v", tt.pixel, tt.w, err, tt.wantErr)
			}
			if err == nil && g.Pixels != tt.wantPixels {
				t.Errorf("pixels = %d, want %d", g.Pixels, tt.wantPixels)
			}
		})
	}
}

func TestPixelsFor(t *testing.T) {
	g := DefaultGrid()
	tests := []struct {
		spacing float64
		want    int
		wantErr bool
	}{
		{50, 4, false},
		{62.5, 5, false},
		{75, 6, false},
		{87.5, 7, false},
		{100, 8, false},
		{112.5, 9, false},
		{125, 10, false},
		{137.5, 11, false},
		{150, 12, false},
		// Non-multiples round up: the passband must contain the signal.
		{51, 5, false},
		{76, 7, false},
		{1, 1, false},
		{0, 0, true},
		{-75, 0, true},
		{5000, 0, true},
	}
	for _, tt := range tests {
		got, err := g.PixelsFor(tt.spacing)
		if (err != nil) != tt.wantErr {
			t.Fatalf("PixelsFor(%v) err = %v, wantErr %v", tt.spacing, err, tt.wantErr)
		}
		if err == nil && got != tt.want {
			t.Errorf("PixelsFor(%v) = %d, want %d", tt.spacing, got, tt.want)
		}
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := Interval{Start: 4, Count: 4} // [4,8)
	tests := []struct {
		b    Interval
		want bool
	}{
		{Interval{0, 4}, false},  // adjacent below
		{Interval{8, 4}, false},  // adjacent above
		{Interval{0, 5}, true},   // overlaps start
		{Interval{7, 1}, true},   // overlaps end
		{Interval{5, 2}, true},   // contained
		{Interval{0, 20}, true},  // contains
		{Interval{4, 4}, true},   // identical
		{Interval{20, 3}, false}, // disjoint
	}
	for _, tt := range tests {
		if got := a.Overlaps(tt.b); got != tt.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", a, tt.b, got, tt.want)
		}
		if got := tt.b.Overlaps(a); got != tt.want {
			t.Errorf("overlap not symmetric for %v and %v", a, tt.b)
		}
	}
}

func TestMapPlaceRelease(t *testing.T) {
	g := Grid{PixelGHz: 12.5, Pixels: 16}
	m := NewMap(g)
	iv := Interval{Start: 2, Count: 6}

	if err := m.Place(iv); err != nil {
		t.Fatalf("Place: %v", err)
	}
	if m.FreePixels() != 10 {
		t.Errorf("free = %d, want 10", m.FreePixels())
	}
	if m.CanPlace(Interval{Start: 5, Count: 2}) {
		t.Error("CanPlace reported overlap interval as free")
	}
	if err := m.Place(Interval{Start: 7, Count: 2}); err == nil {
		t.Error("Place over occupied pixels succeeded")
	}
	// Adjacent placements must work.
	if err := m.Place(Interval{Start: 8, Count: 8}); err != nil {
		t.Errorf("adjacent Place: %v", err)
	}
	if err := m.Release(iv); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if m.FreePixels() != 8 {
		t.Errorf("free after release = %d, want 8", m.FreePixels())
	}
	if err := m.Release(iv); err == nil {
		t.Error("double Release succeeded")
	}
}

func TestMapPlaceOutOfRange(t *testing.T) {
	m := NewMap(Grid{PixelGHz: 12.5, Pixels: 8})
	for _, iv := range []Interval{{-1, 4}, {6, 4}, {0, 0}, {0, -2}, {0, 9}} {
		if err := m.Place(iv); err == nil {
			t.Errorf("Place(%v) out of range succeeded", iv)
		}
	}
	if m.FreePixels() != 8 {
		t.Errorf("failed placements changed occupancy: free = %d", m.FreePixels())
	}
}

func TestFirstFit(t *testing.T) {
	m := NewMap(Grid{PixelGHz: 12.5, Pixels: 16})
	mustPlace(t, m, Interval{0, 2})
	mustPlace(t, m, Interval{6, 2})

	iv, err := m.FirstFit(4)
	if err != nil {
		t.Fatalf("FirstFit: %v", err)
	}
	if iv != (Interval{2, 4}) {
		t.Errorf("FirstFit(4) = %v, want [2,6)", iv)
	}
	iv, err = m.FirstFit(8)
	if err != nil {
		t.Fatalf("FirstFit(8): %v", err)
	}
	if iv != (Interval{8, 8}) {
		t.Errorf("FirstFit(8) = %v, want [8,16)", iv)
	}
	if _, err := m.FirstFit(13); !errors.Is(err, ErrNoSpectrum) {
		t.Errorf("FirstFit(13) err = %v, want ErrNoSpectrum", err)
	}
}

func TestBestFit(t *testing.T) {
	m := NewMap(Grid{PixelGHz: 12.5, Pixels: 20})
	// Free runs: [0,3) len 3, [5,11) len 6, [13,20) len 7.
	mustPlace(t, m, Interval{3, 2})
	mustPlace(t, m, Interval{11, 2})

	iv, err := m.BestFit(3)
	if err != nil {
		t.Fatalf("BestFit: %v", err)
	}
	if iv != (Interval{0, 3}) {
		t.Errorf("BestFit(3) = %v, want the exact-size run [0,3)", iv)
	}
	iv, err = m.BestFit(5)
	if err != nil {
		t.Fatalf("BestFit(5): %v", err)
	}
	if iv != (Interval{5, 5}) {
		t.Errorf("BestFit(5) = %v, want start of len-6 run [5,10)", iv)
	}
	if _, err := m.BestFit(8); !errors.Is(err, ErrNoSpectrum) {
		t.Errorf("BestFit(8) err = %v, want ErrNoSpectrum", err)
	}
}

func TestFreeRunsAndFragmentation(t *testing.T) {
	m := NewMap(Grid{PixelGHz: 12.5, Pixels: 12})
	if frag := m.Fragmentation(); frag != 0 {
		t.Errorf("empty map fragmentation = %v, want 0", frag)
	}
	mustPlace(t, m, Interval{4, 2})
	runs := m.FreeRuns()
	want := []Interval{{0, 4}, {6, 6}}
	if len(runs) != len(want) {
		t.Fatalf("FreeRuns = %v, want %v", runs, want)
	}
	for i := range runs {
		if runs[i] != want[i] {
			t.Errorf("run %d = %v, want %v", i, runs[i], want[i])
		}
	}
	if lr := m.LargestFreeRun(); lr != (Interval{6, 6}) {
		t.Errorf("LargestFreeRun = %v, want [6,12)", lr)
	}
	if frag := m.Fragmentation(); frag != 1-6.0/10.0 {
		t.Errorf("Fragmentation = %v, want 0.4", frag)
	}
}

func TestMapClone(t *testing.T) {
	m := NewMap(Grid{PixelGHz: 12.5, Pixels: 8})
	mustPlace(t, m, Interval{0, 4})
	c := m.Clone()
	mustPlace(t, c, Interval{4, 4})
	if m.FreePixels() != 4 {
		t.Errorf("clone mutation leaked into original: free = %d", m.FreePixels())
	}
	if c.FreePixels() != 0 {
		t.Errorf("clone free = %d, want 0", c.FreePixels())
	}
}

func mustPlace(t *testing.T, m *Map, iv Interval) {
	t.Helper()
	if err := m.Place(iv); err != nil {
		t.Fatalf("Place(%v): %v", iv, err)
	}
}

// Property: for any sequence of random place/release operations, the free
// count always equals pixels minus the pixels of live intervals, and
// FirstFit never returns an interval overlapping a live one.
func TestMapAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Grid{PixelGHz: 12.5, Pixels: 64}
		m := NewMap(g)
		var live []Interval
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 || len(live) == 0 {
				count := 1 + rng.Intn(12)
				iv, err := m.FirstFit(count)
				if errors.Is(err, ErrNoSpectrum) {
					continue
				}
				if err != nil {
					return false
				}
				for _, l := range live {
					if iv.Overlaps(l) {
						return false // FirstFit returned an occupied interval
					}
				}
				if m.Place(iv) != nil {
					return false
				}
				live = append(live, iv)
			} else {
				i := rng.Intn(len(live))
				if m.Release(live[i]) != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			sum := 0
			for _, l := range live {
				sum += l.Count
			}
			if m.FreePixels() != g.Pixels-sum {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: BestFit and FirstFit agree on feasibility — one finds a slot
// iff the other does.
func TestFitFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMap(Grid{PixelGHz: 12.5, Pixels: 48})
		for i := 0; i < 10; i++ {
			if iv, err := m.FirstFit(1 + rng.Intn(6)); err == nil {
				_ = m.Place(iv)
			}
		}
		for count := 1; count <= 48; count++ {
			_, errFF := m.FirstFit(count)
			_, errBF := m.BestFit(count)
			if (errFF == nil) != (errBF == nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
