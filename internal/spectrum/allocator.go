package spectrum

import (
	"fmt"
	"sort"
)

// FiberID identifies one fiber in the optical topology. The allocator is
// deliberately decoupled from the topology package: any stable string key
// works.
type FiberID string

// Fit selects the placement strategy used when searching for a free
// interval across a fiber path.
type Fit int

const (
	// FirstFit places the channel in the lowest-indexed interval that is
	// free on every fiber of the path. This is FlexWAN's default.
	FirstFit Fit = iota
	// BestFit places the channel in the smallest joint free run that can
	// hold it, reducing fragmentation of wide runs.
	BestFit
)

func (f Fit) String() string {
	switch f {
	case FirstFit:
		return "first-fit"
	case BestFit:
		return "best-fit"
	default:
		return fmt.Sprintf("Fit(%d)", int(f))
	}
}

// Allocation records one channel's placement: the same pixel interval on
// every fiber of its path (spectrum consistency, constraint (4) of
// Algorithm 1).
type Allocation struct {
	Fibers   []FiberID
	Interval Interval
}

// Allocator manages pixel occupancy across all fibers of a network and
// enforces, by construction, the paper's two spectrum invariants:
//
//   - conflict-freedom: a pixel on a fiber is held by at most one channel
//     (constraint (3));
//   - consistency: a channel occupies the identical interval on every
//     fiber it traverses (constraint (4)).
//
// Allocator is not safe for concurrent use; the controller serializes
// access (§4.3: the centralized controller is the single writer).
type Allocator struct {
	grid   Grid
	fibers map[FiberID]*Map
}

// NewAllocator returns an empty allocator over grid g.
func NewAllocator(g Grid) *Allocator {
	return &Allocator{grid: g, fibers: make(map[FiberID]*Map)}
}

// Grid returns the allocator's pixel grid.
func (a *Allocator) Grid() Grid { return a.grid }

// fiber returns (creating on first use) the occupancy map for id.
func (a *Allocator) fiber(id FiberID) *Map {
	m, ok := a.fibers[id]
	if !ok {
		m = NewMap(a.grid)
		a.fibers[id] = m
	}
	return m
}

// FiberMap returns a copy of the occupancy map for the fiber, or an
// all-free map if the fiber has no allocations yet.
func (a *Allocator) FiberMap(id FiberID) *Map {
	return a.fiber(id).Clone()
}

// jointFree returns a synthetic map whose pixel w is free iff w is free on
// every fiber in the path.
func (a *Allocator) jointFree(path []FiberID) *Map {
	joint := NewMap(a.grid)
	for w := 0; w < a.grid.Pixels; w++ {
		for _, f := range path {
			if a.fiber(f).Used(w) {
				// Marking via Place would be O(1) anyway; direct write
				// keeps accounting consistent through the method.
				joint.used[w] = true
				joint.free--
				break
			}
		}
	}
	return joint
}

// Find searches for a free interval of count pixels shared by every fiber
// in path, without allocating it.
func (a *Allocator) Find(path []FiberID, count int, fit Fit) (Interval, error) {
	if len(path) == 0 {
		return Interval{}, fmt.Errorf("spectrum: empty fiber path")
	}
	joint := a.jointFree(path)
	switch fit {
	case BestFit:
		return joint.BestFit(count)
	default:
		return joint.FirstFit(count)
	}
}

// Allocate finds and claims a free interval of count pixels on every fiber
// of the path. The returned Allocation must be passed to Release to free
// it. The operation is atomic: on failure no fiber is modified.
func (a *Allocator) Allocate(path []FiberID, count int, fit Fit) (Allocation, error) {
	iv, err := a.Find(path, count, fit)
	if err != nil {
		return Allocation{}, err
	}
	if err := a.AllocateExact(path, iv); err != nil {
		return Allocation{}, err
	}
	return Allocation{Fibers: append([]FiberID(nil), path...), Interval: iv}, nil
}

// AllocateExact claims a specific interval on every fiber of the path,
// failing atomically if any fiber already uses any of its pixels.
func (a *Allocator) AllocateExact(path []FiberID, iv Interval) error {
	if len(path) == 0 {
		return fmt.Errorf("spectrum: empty fiber path")
	}
	for _, f := range path {
		if !a.fiber(f).CanPlace(iv) {
			return fmt.Errorf("spectrum: interval %v not free on fiber %s: %w", iv, f, ErrNoSpectrum)
		}
	}
	for i, f := range path {
		if err := a.fiber(f).Place(iv); err != nil {
			// Roll back fibers already written. Place cannot fail here
			// after CanPlace unless the path repeats a fiber — handle
			// that by undoing and reporting.
			for _, g := range path[:i] {
				_ = a.fiber(g).Release(iv)
			}
			return fmt.Errorf("spectrum: fiber %s repeated in path or raced: %w", f, err)
		}
	}
	return nil
}

// Release frees a previous allocation on every fiber of its path.
func (a *Allocator) Release(al Allocation) error {
	for _, f := range al.Fibers {
		if err := a.fiber(f).Release(al.Interval); err != nil {
			return err
		}
	}
	return nil
}

// UsedPixels returns the total occupied pixels across all fibers (the
// paper's "spectrum usage" metric counts GHz·fiber; multiply by PixelGHz).
func (a *Allocator) UsedPixels() int {
	total := 0
	for _, m := range a.fibers {
		total += m.UsedPixels()
	}
	return total
}

// UsedGHz returns the total occupied spectrum in GHz summed over fibers.
func (a *Allocator) UsedGHz() float64 {
	return float64(a.UsedPixels()) * a.grid.PixelGHz
}

// Fibers returns the IDs of all fibers that have an occupancy map, sorted.
func (a *Allocator) Fibers() []FiberID {
	ids := make([]FiberID, 0, len(a.fibers))
	for id := range a.fibers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Verify re-checks the conflict invariant from raw occupancy and the given
// set of allocations: every allocation's interval must be marked used on
// each of its fibers, and no pixel may be claimed by two allocations on
// the same fiber. It returns nil when the state is consistent. This backs
// the controller's "zero inconsistency and conflict" audit (§4.3).
func (a *Allocator) Verify(allocs []Allocation) error {
	type pixelKey struct {
		fiber FiberID
		w     int
	}
	owner := make(map[pixelKey]int)
	for i, al := range allocs {
		for _, f := range al.Fibers {
			m := a.fiber(f)
			for w := al.Interval.Start; w < al.Interval.End(); w++ {
				if !m.Used(w) {
					return fmt.Errorf("spectrum: allocation %d interval %v not marked used on fiber %s", i, al.Interval, f)
				}
				k := pixelKey{f, w}
				if prev, dup := owner[k]; dup {
					return fmt.Errorf("spectrum: pixel %d on fiber %s claimed by allocations %d and %d", w, f, prev, i)
				}
				owner[k] = i
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the allocator, used by planners to explore
// tentative placements without mutating live state.
func (a *Allocator) Clone() *Allocator {
	c := NewAllocator(a.grid)
	for id, m := range a.fibers {
		c.fibers[id] = m.Clone()
	}
	return c
}
