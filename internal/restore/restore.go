// Package restore implements FlexWAN's optical restoration (§8 of the
// paper): after a fiber cut, reconfigure the affected wavelengths onto
// healthy fibers so as to maximize the total restored capacity,
//
//	maximize  Σ d·λ'
//
// subject to
//
//	(7) restored capacity per link ≤ its affected capacity,
//	(8) transponders used ≤ the link's spare transponders (those whose
//	    wavelengths crossed the cut fiber, plus any pre-provisioned
//	    spares — the FlexWAN+ variant),
//	(9) restored channels fit in the spectrum left spare after planning,
//	(10–13) the reach/consistency/status/count constraints of Algorithm 1
//	        applied to the restoration paths.
//
// Like package plan, restoration ships both the exact MIP (SolveExact)
// and the scalable heuristic (Solve) used for full failure sweeps.
package restore

import (
	"context"
	"fmt"
	"sort"

	"flexwan/internal/parallel"
	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// Scenario is one failure case from the link failure model: a set of
// simultaneously cut fibers with an occurrence probability (the paper's
// deterministic 1-failures have Probability 1/N each; probabilistic
// scenarios carry model weights).
type Scenario struct {
	ID          string
	CutFibers   []string
	Probability float64
}

// SingleFiberScenarios enumerates all 1-failure scenarios of the
// topology, each equally probable — the deterministic k=1 failure model
// the paper evaluates.
func SingleFiberScenarios(g *topology.Optical) []Scenario {
	fibers := g.Fibers()
	out := make([]Scenario, len(fibers))
	for i, f := range fibers {
		out[i] = Scenario{
			ID:          "cut-" + f.ID,
			CutFibers:   []string{f.ID},
			Probability: 1 / float64(len(fibers)),
		}
	}
	return out
}

// Problem is one restoration instance: the planned backbone, the failure,
// and the hardware family available for retuning.
type Problem struct {
	Optical *topology.Optical
	IP      *topology.IPTopology
	Catalog transponder.Catalog
	Grid    spectrum.Grid
	// Base is the network-planning result the backbone currently runs
	// (restoration operates on the configured backbone, §8).
	Base *plan.Result
	// Scenario is the fiber-cut case to restore.
	Scenario Scenario
	// K is the number of candidate restoration paths per affected link.
	K int
	// ExtraSpares adds pre-provisioned spare transponder pairs per IP
	// link on top of the affected ones — the FlexWAN+ variant (§8 gives
	// each link half of its saved transponders as spares).
	ExtraSpares map[string]int
	// Fit selects the spectrum placement strategy of the heuristic.
	Fit spectrum.Fit
}

func (p Problem) k() int {
	if p.K <= 0 {
		return plan.DefaultK
	}
	return p.K
}

// Restored is one re-established channel.
type Restored struct {
	LinkID string
	// Original is the failed wavelength being revived.
	Original plan.Wavelength
	// Path is the restoration path in the post-failure topology.
	Path topology.Path
	// Mode is the (possibly re-modulated) format on the new path.
	Mode transponder.Mode
	// Interval is the spectrum it now occupies.
	Interval spectrum.Interval
}

// PathStretch returns restoredLength/originalLength — the paper's Fig. 15a
// metric (90% of restored paths are longer; extremes exceed 10×).
func (r Restored) PathStretch() float64 {
	if r.Original.Path.LengthKm == 0 {
		return 1
	}
	return r.Path.LengthKm / r.Original.Path.LengthKm
}

// Result is the outcome of restoring one scenario.
type Result struct {
	Scenario     Scenario
	AffectedGbps int
	RestoredGbps int
	Restored     []Restored
	// PerLink maps affected link ID → (affected, restored) Gbps.
	PerLink map[string][2]int
	// Solver records how the exact MIP terminated; nil on heuristic
	// results and on scenarios that never reached the solver.
	Solver *plan.SolveStats
}

// Capability returns restored/affected capacity — the paper's restoration
// capability metric (Figs. 15b, 16). A scenario with no affected capacity
// has capability 1.
func (r *Result) Capability() float64 {
	if r.AffectedGbps == 0 {
		return 1
	}
	return float64(r.RestoredGbps) / float64(r.AffectedGbps)
}

// affected splits the base plan into surviving and failed wavelengths.
func affected(base *plan.Result, cut []string) (failed []plan.Wavelength, surviving []plan.Wavelength) {
	cutSet := make(map[string]struct{}, len(cut))
	for _, id := range cut {
		cutSet[id] = struct{}{}
	}
	for _, w := range base.Wavelengths {
		hit := false
		for _, f := range w.Path.Fibers {
			if _, ok := cutSet[f]; ok {
				hit = true
				break
			}
		}
		if hit {
			failed = append(failed, w)
		} else {
			surviving = append(surviving, w)
		}
	}
	return failed, surviving
}

// survivorAllocator rebuilds per-fiber occupancy from the surviving
// wavelengths only: the spectrum φ_w available to restoration is whatever
// planning left spare plus what the failed wavelengths released. (A
// failed wavelength no longer transmits, so the WSS passbands it held on
// healthy fibers are reconfigurable — the controller releases them as
// part of the restoration push.)
func survivorAllocator(grid spectrum.Grid, surviving []plan.Wavelength) (*spectrum.Allocator, error) {
	a := spectrum.NewAllocator(grid)
	for _, w := range surviving {
		fibers := make([]spectrum.FiberID, len(w.Path.Fibers))
		for i, f := range w.Path.Fibers {
			fibers[i] = spectrum.FiberID(f)
		}
		if err := a.AllocateExact(fibers, w.Interval); err != nil {
			return nil, fmt.Errorf("restore: base plan inconsistent: %w", err)
		}
	}
	return a, nil
}

// Solve runs the restoration heuristic for one scenario.
//
// Affected links are processed in order of decreasing affected capacity
// (ties by ID). Each link may retune as many transponders as it lost
// (plus ExtraSpares). Wavelengths are restored one at a time over the
// K shortest post-failure paths; each takes the highest feasible data
// rate not exceeding the link's remaining affected capacity (constraint
// (7) forbids overshoot — restoration revives lost capacity, it does not
// grow the link), widening channel spacing as needed, which is exactly
// the SVT advantage the paper illustrates in Fig. 4.
func Solve(p Problem) (*Result, error) {
	if p.Base == nil {
		return nil, fmt.Errorf("restore: nil base plan")
	}
	failed, surviving := affected(p.Base, p.Scenario.CutFibers)
	res := &Result{
		Scenario: p.Scenario,
		PerLink:  make(map[string][2]int),
	}
	if len(failed) == 0 {
		return res, nil
	}
	alloc, err := survivorAllocator(p.Grid, surviving)
	if err != nil {
		return nil, err
	}
	post := p.Optical.Without(p.Scenario.CutFibers...)

	// Group failures per link.
	type linkState struct {
		id           string
		affectedGbps int
		spares       int
		originals    []plan.Wavelength
	}
	byLink := make(map[string]*linkState)
	var order []*linkState
	for _, w := range failed {
		ls, ok := byLink[w.LinkID]
		if !ok {
			ls = &linkState{id: w.LinkID}
			byLink[w.LinkID] = ls
			order = append(order, ls)
		}
		ls.affectedGbps += w.Mode.DataRateGbps
		ls.spares++
		ls.originals = append(ls.originals, w)
	}
	for _, ls := range order {
		ls.spares += p.ExtraSpares[ls.id]
		res.AffectedGbps += ls.affectedGbps
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].affectedGbps != order[j].affectedGbps {
			return order[i].affectedGbps > order[j].affectedGbps
		}
		return order[i].id < order[j].id
	})

	endpoints := make(map[string][2]topology.NodeID, len(p.IP.Links))
	for _, l := range p.IP.Links {
		endpoints[l.ID] = [2]topology.NodeID{l.A, l.B}
	}

	for _, ls := range order {
		ep, ok := endpoints[ls.id]
		if !ok {
			return nil, fmt.Errorf("restore: affected link %s missing from IP topology", ls.id)
		}
		paths := post.KShortestPaths(ep[0], ep[1], p.k())
		remaining := ls.affectedGbps
		restored := 0
		oi := 0 // next original wavelength to pair with a restored one
		for remaining > 0 && ls.spares > 0 && len(paths) > 0 {
			r, ok := restoreOne(p, alloc, ls.id, paths, remaining)
			if !ok {
				break
			}
			if oi < len(ls.originals) {
				r.Original = ls.originals[oi]
				oi++
			}
			res.Restored = append(res.Restored, r)
			remaining -= r.Mode.DataRateGbps
			restored += r.Mode.DataRateGbps
			ls.spares--
		}
		res.RestoredGbps += restored
		res.PerLink[ls.id] = [2]int{ls.affectedGbps, restored}
	}
	return res, nil
}

// restoreOne places a single restored wavelength for a link, trying
// candidate paths in length order. The mode is the highest feasible rate
// ≤ remaining (constraint (7)); ties prefer the narrowest spacing.
func restoreOne(p Problem, alloc *spectrum.Allocator, linkID string, paths []topology.Path, remainingGbps int) (Restored, bool) {
	for _, path := range paths {
		modes := p.Catalog.FeasibleModes(path.LengthKm)
		sort.SliceStable(modes, func(i, j int) bool {
			if modes[i].DataRateGbps != modes[j].DataRateGbps {
				return modes[i].DataRateGbps > modes[j].DataRateGbps
			}
			return modes[i].SpacingGHz < modes[j].SpacingGHz
		})
		fibers := make([]spectrum.FiberID, len(path.Fibers))
		for i, f := range path.Fibers {
			fibers[i] = spectrum.FiberID(f)
		}
		for _, mode := range modes {
			if mode.DataRateGbps > remainingGbps {
				continue
			}
			pixels := mode.Pixels(p.Grid)
			if pixels > p.Grid.Pixels {
				continue
			}
			al, err := alloc.Allocate(fibers, pixels, p.Fit)
			if err != nil {
				continue
			}
			return Restored{
				LinkID:   linkID,
				Path:     path,
				Mode:     mode,
				Interval: al.Interval,
			}, true
		}
	}
	return Restored{}, false
}

// ScenarioError records one scenario whose solve failed during a sweep.
type ScenarioError struct {
	// ID is the failing scenario's identifier.
	ID  string
	Err error
}

func (e ScenarioError) Error() string {
	return fmt.Sprintf("restore: scenario %s: %v", e.ID, e.Err)
}

// Unwrap exposes the underlying solve error to errors.Is/As.
func (e ScenarioError) Unwrap() error { return e.Err }

// SweepResult aggregates restoration over a scenario set.
type SweepResult struct {
	// Results holds the successfully restored scenarios in input order.
	// Scenarios whose solve failed are absent here and recorded in
	// Errors instead, so one infeasible cut cannot void a whole sweep.
	Results []*Result
	// Errors lists the failed scenarios (input order). Aggregate metrics
	// (MeanCapability, Capabilities, PathStretches) are computed over
	// Results only.
	Errors []ScenarioError
}

// Failed returns the number of scenarios whose solve failed.
func (s SweepResult) Failed() int { return len(s.Errors) }

// FailedIDs returns the IDs of the failed scenarios in input order.
func (s SweepResult) FailedIDs() []string {
	if len(s.Errors) == 0 {
		return nil
	}
	ids := make([]string, len(s.Errors))
	for i, e := range s.Errors {
		ids[i] = e.ID
	}
	return ids
}

// MeanCapability returns the probability-weighted mean restoration
// capability over the sweep (Fig. 15b's y-axis). When every scenario in
// the sweep has an unset probability (<= 0) the mean is unweighted;
// otherwise scenarios with non-positive probabilities contribute
// nothing — mixing defaulted weight-1 entries into a probabilistic set
// (p ≈ 1e-4) would skew the mean by orders of magnitude.
func (s SweepResult) MeanCapability() float64 {
	if len(s.Results) == 0 {
		return 1
	}
	allUnset := true
	for _, r := range s.Results {
		if r.Scenario.Probability > 0 {
			allUnset = false
			break
		}
	}
	totalP := 0.0
	sum := 0.0
	for _, r := range s.Results {
		p := r.Scenario.Probability
		if allUnset {
			p = 1
		} else if p <= 0 {
			continue
		}
		totalP += p
		sum += p * r.Capability()
	}
	if totalP == 0 {
		return 1
	}
	return sum / totalP
}

// Capabilities returns each scenario's capability, sorted ascending —
// ready for CDF plotting (Fig. 16).
func (s SweepResult) Capabilities() []float64 {
	out := make([]float64, len(s.Results))
	for i, r := range s.Results {
		out[i] = r.Capability()
	}
	sort.Float64s(out)
	return out
}

// PathStretches returns restored/original length ratios across all
// restored wavelengths in the sweep, sorted ascending (Fig. 15a).
func (s SweepResult) PathStretches() []float64 {
	var out []float64
	for _, r := range s.Results {
		for _, w := range r.Restored {
			if w.Original.Path.LengthKm > 0 {
				out = append(out, w.PathStretch())
			}
		}
	}
	sort.Float64s(out)
	return out
}

// SweepOptions tune a scenario sweep.
type SweepOptions struct {
	// Workers is the number of scenarios solved concurrently: 0 (the
	// default) uses runtime.GOMAXPROCS, 1 forces the sequential path.
	// Every worker clones the per-scenario state (allocator, post-cut
	// topology) and treats the base Problem as read-only, so results are
	// identical for every worker count.
	Workers int
	// Context, when non-nil, cancels the sweep early; undispatched
	// scenarios are recorded as failed with the context's error.
	Context context.Context
}

// Sweep restores every scenario against the same base plan with default
// options (all cores).
func Sweep(base Problem, scenarios []Scenario) (SweepResult, error) {
	return SweepWithOptions(base, scenarios, SweepOptions{})
}

// SweepWithOptions restores every scenario against the same base plan.
// Scenarios are independent solves, so they run on a bounded worker
// pool; results keep the input scenario order regardless of completion
// order. A scenario whose solve fails is recorded in SweepResult.Errors
// and the sweep continues; the returned error is non-nil only when the
// sweep was cancelled or every scenario failed.
func SweepWithOptions(base Problem, scenarios []Scenario, opts SweepOptions) (SweepResult, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	results, errs := parallel.Map(ctx, opts.Workers, len(scenarios), func(ctx context.Context, i int) (*Result, error) {
		p := base
		p.Scenario = scenarios[i]
		return Solve(p)
	})
	var out SweepResult
	for i, sc := range scenarios {
		if errs[i] != nil {
			out.Errors = append(out.Errors, ScenarioError{ID: sc.ID, Err: errs[i]})
			continue
		}
		out.Results = append(out.Results, results[i])
	}
	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("restore: sweep cancelled after %d/%d scenarios: %w", len(out.Results), len(scenarios), err)
	}
	if len(scenarios) > 0 && len(out.Results) == 0 {
		return out, fmt.Errorf("restore: all %d scenarios failed: %w", len(scenarios), out.Errors[0])
	}
	return out, nil
}

// PlusSpares computes the FlexWAN+ spare map: for each link, extra
// transponder pairs equal to fraction × (baseline count − flexwan count),
// floored at zero — "extra half of the saved transponders" with
// fraction = 0.5 (§8).
func PlusSpares(flexwan, baseline *plan.Result, fraction float64) map[string]int {
	out := make(map[string]int)
	for id, fp := range flexwan.PerLink {
		bp, ok := baseline.PerLink[id]
		if !ok {
			continue
		}
		saved := bp.Wavelengths - fp.Wavelengths
		if saved <= 0 {
			continue
		}
		extra := int(fraction * float64(saved))
		if extra > 0 {
			out[id] = extra
		}
	}
	return out
}
