package restore

import (
	"math"
	"testing"

	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
)

func TestDoubleFiberScenarios(t *testing.T) {
	g := ring(t) // 3 fibers → 3 pairs
	scs := DoubleFiberScenarios(g)
	if len(scs) != 3 {
		t.Fatalf("scenarios = %d, want 3", len(scs))
	}
	total := 0.0
	seen := map[string]bool{}
	for _, s := range scs {
		if len(s.CutFibers) != 2 || s.CutFibers[0] == s.CutFibers[1] {
			t.Errorf("bad pair %v", s.CutFibers)
		}
		if seen[s.ID] {
			t.Errorf("duplicate scenario %s", s.ID)
		}
		seen[s.ID] = true
		total += s.Probability
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", total)
	}
}

func TestProbabilisticScenarios(t *testing.T) {
	g := ring(t)
	scs := ProbabilisticScenarios(g, 42, 20, 1.2) // high rate → multi-cut mix
	if len(scs) == 0 {
		t.Fatal("no scenarios sampled")
	}
	total := 0.0
	seen := map[string]bool{}
	for _, s := range scs {
		if len(s.CutFibers) == 0 {
			t.Error("scenario with no cuts")
		}
		if s.Probability <= 0 || s.Probability > 1 {
			t.Errorf("probability %v out of range", s.Probability)
		}
		if seen[s.ID] {
			t.Errorf("duplicate %s", s.ID)
		}
		seen[s.ID] = true
		total += s.Probability
	}
	if math.Abs(total-1) > 1e-6 {
		t.Errorf("probabilities sum to %v", total)
	}
	// Determinism.
	again := ProbabilisticScenarios(g, 42, 20, 1.2)
	if len(again) != len(scs) {
		t.Errorf("same seed gave %d then %d scenarios", len(scs), len(again))
	}
	for i := range again {
		if again[i].ID != scs[i].ID {
			t.Errorf("order changed at %d: %s vs %s", i, again[i].ID, scs[i].ID)
		}
	}
	// Edge cases.
	if got := ProbabilisticScenarios(g, 1, 0, 1.2); got != nil {
		t.Error("n=0 returned scenarios")
	}
}

func TestSweepOverProbabilisticScenarios(t *testing.T) {
	g := ring(t)
	p, r := planFor(t, g, ipAB(t, 600), transponder.SVT(), spectrum.DefaultGrid())
	scs := ProbabilisticScenarios(g, 7, 10, 0.8)
	sweep, err := Sweep(Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: p.Grid, Base: r,
	}, scs)
	if err != nil {
		t.Fatal(err)
	}
	mc := sweep.MeanCapability()
	if mc < 0 || mc > 1 {
		t.Errorf("mean capability = %v", mc)
	}
	// Scenarios cutting both ring sides must restore nothing.
	for _, res := range sweep.Results {
		if len(res.Scenario.CutFibers) == 3 && res.RestoredGbps != 0 {
			t.Errorf("restored %d with all fibers cut", res.RestoredGbps)
		}
	}
}
