package restore

import (
	"context"
	"fmt"
	"testing"

	"flexwan/internal/parallel"
	"flexwan/internal/solver"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
)

func TestSolveExactFig4(t *testing.T) {
	// Same scenario as TestRestoreFig4Scenario, exact: RADWAN restores
	// 200 of 300 Gbps on the 1200 km detour, FlexWAN all 300.
	g := ring(t)
	grid := spectrum.Grid{PixelGHz: 12.5, Pixels: 16}

	pb, rb := planFor(t, g, ipAB(t, 300), transponder.RADWAN(), grid)
	resB, err := SolveExact(Problem{
		Optical: g, IP: pb.IP, Catalog: pb.Catalog, Grid: grid, Base: rb,
		Scenario: Scenario{ID: "cut-f1", CutFibers: []string{"f1"}}, K: 2,
	}, solver.Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if resB.RestoredGbps != 200 {
		t.Errorf("RADWAN exact restored = %d, want 200", resB.RestoredGbps)
	}

	pf, rf := planFor(t, g, ipAB(t, 300), transponder.SVT(), grid)
	resF, err := SolveExact(Problem{
		Optical: g, IP: pf.IP, Catalog: pf.Catalog, Grid: grid, Base: rf,
		Scenario: Scenario{ID: "cut-f1", CutFibers: []string{"f1"}}, K: 2,
	}, solver.Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if resF.RestoredGbps != 300 {
		t.Errorf("FlexWAN exact restored = %d, want 300", resF.RestoredGbps)
	}
}

func TestExactNeverWorseThanHeuristic(t *testing.T) {
	// The exact optimum upper-bounds the heuristic on every 1-failure
	// scenario of the ring. Scenarios are independent, so they run
	// concurrently — which also exercises Solve/SolveExact under -race.
	g := ring(t)
	grid := spectrum.Grid{PixelGHz: 12.5, Pixels: 20}
	p, r := planFor(t, g, ipAB(t, 900), transponder.SVT(), grid)
	scs := SingleFiberScenarios(g)
	errs := parallel.ForEach(context.Background(), 0, len(scs), func(_ context.Context, i int) error {
		sc := scs[i]
		base := Problem{
			Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: grid, Base: r,
			Scenario: sc, K: 2,
		}
		h, err := Solve(base)
		if err != nil {
			return fmt.Errorf("%s: heuristic: %w", sc.ID, err)
		}
		e, err := SolveExact(base, solver.Options{MaxNodes: 50000})
		if err != nil {
			return fmt.Errorf("%s: exact: %w", sc.ID, err)
		}
		if e.RestoredGbps < h.RestoredGbps {
			return fmt.Errorf("%s: exact %d < heuristic %d", sc.ID, e.RestoredGbps, h.RestoredGbps)
		}
		if e.RestoredGbps > e.AffectedGbps {
			return fmt.Errorf("%s: exact restored %d > affected %d", sc.ID, e.RestoredGbps, e.AffectedGbps)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestSolveExactWorkersDeterministic: the seed restoration MIP must
// report identical objective (restored Gbps) and status for any solver
// worker count (run under -race in CI).
func TestSolveExactWorkersDeterministic(t *testing.T) {
	g := ring(t)
	grid := spectrum.Grid{PixelGHz: 12.5, Pixels: 20}
	p, r := planFor(t, g, ipAB(t, 900), transponder.SVT(), grid)
	base := Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: grid, Base: r,
		Scenario: Scenario{ID: "cut-f1", CutFibers: []string{"f1"}}, K: 2,
	}
	ref, err := SolveExact(base, solver.Options{MaxNodes: 50000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Solver == nil || ref.Solver.Workers != 1 {
		t.Fatalf("reference SolveStats = %+v, want Workers 1", ref.Solver)
	}
	for _, w := range []int{2, 8} {
		res, err := SolveExact(base, solver.Options{MaxNodes: 50000, Workers: w})
		if err != nil {
			t.Fatalf("Workers=%d: %v", w, err)
		}
		if res.Solver.Status != ref.Solver.Status || res.Solver.Objective != ref.Solver.Objective {
			t.Errorf("Workers=%d solve = (%v, %v), want (%v, %v)", w,
				res.Solver.Status, res.Solver.Objective, ref.Solver.Status, ref.Solver.Objective)
		}
		if res.RestoredGbps != ref.RestoredGbps {
			t.Errorf("Workers=%d restored = %d, want %d", w, res.RestoredGbps, ref.RestoredGbps)
		}
		if res.Solver.Workers != w {
			t.Errorf("Workers=%d SolveStats.Workers = %d", w, res.Solver.Workers)
		}
	}
}

func TestSolveExactNoFailure(t *testing.T) {
	g := ring(t)
	p, r := planFor(t, g, ipAB(t, 400), transponder.SVT(), spectrum.DefaultGrid())
	res, err := SolveExact(Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: p.Grid, Base: r,
		Scenario: Scenario{ID: "cut-f3", CutFibers: []string{"f3"}},
	}, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AffectedGbps != 0 || len(res.Restored) != 0 {
		t.Errorf("unexpected restoration for unused fiber: %+v", res)
	}
}

func TestSolveExactNilBase(t *testing.T) {
	if _, err := SolveExact(Problem{}, solver.Options{}); err == nil {
		t.Error("nil base accepted")
	}
}

func TestSolveExactExtraSpares(t *testing.T) {
	// One 600G wavelength fails; with no extra spares at most one channel
	// (≤500G at 1200 km) can be re-established, but an extra transponder
	// pair lets the exact solver stack a second channel and recover more.
	g := ring(t)
	grid := spectrum.Grid{PixelGHz: 12.5, Pixels: 16}
	p, r := planFor(t, g, ipAB(t, 600), transponder.SVT(), grid)
	base := Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: grid, Base: r,
		Scenario: Scenario{ID: "cut-f1", CutFibers: []string{"f1"}}, K: 2,
	}
	without, err := SolveExact(base, solver.Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	withSpares := base
	withSpares.ExtraSpares = map[string]int{"e1": 2}
	with, err := SolveExact(withSpares, solver.Options{MaxNodes: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if with.RestoredGbps < without.RestoredGbps {
		t.Errorf("extra spares reduced exact restoration: %d < %d", with.RestoredGbps, without.RestoredGbps)
	}
	if with.RestoredGbps != 600 {
		t.Errorf("with spares restored %d, want full 600 (e.g. 500+100)", with.RestoredGbps)
	}
	if without.RestoredGbps != 500 {
		t.Errorf("without spares restored %d, want 500 (single channel cap)", without.RestoredGbps)
	}
}
