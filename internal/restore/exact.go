package restore

import (
	"fmt"
	"sort"
	"strconv"

	"flexwan/internal/plan"
	"flexwan/internal/solver"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// SolveExact builds the §8 restoration formulation as a MIP and solves it
// with the internal branch-and-bound. As in plan.SolveExact, fixing a
// restored wavelength's (path, format, starting pixel) determines its
// slot occupancy, so constraints (10)–(13) hold by construction; the rows
// are (7) capacity caps, (8) spare-transponder caps, and (9) spare-slot
// conflicts. Placements overlapping spectrum still held by surviving
// wavelengths are never generated — that is constraint (9)'s φ_w.
func SolveExact(p Problem, opts solver.Options) (*Result, error) {
	if p.Base == nil {
		return nil, fmt.Errorf("restore: nil base plan")
	}
	failed, surviving := affected(p.Base, p.Scenario.CutFibers)
	res := &Result{
		Scenario: p.Scenario,
		PerLink:  make(map[string][2]int),
	}
	if len(failed) == 0 {
		return res, nil
	}
	alloc, err := survivorAllocator(p.Grid, surviving)
	if err != nil {
		return nil, err
	}
	post := p.Optical.Without(p.Scenario.CutFibers...)

	type linkState struct {
		id           string
		affectedGbps int
		spares       int
		originals    []plan.Wavelength
	}
	byLink := make(map[string]*linkState)
	var linkOrder []string
	for _, w := range failed {
		ls, ok := byLink[w.LinkID]
		if !ok {
			ls = &linkState{id: w.LinkID}
			byLink[w.LinkID] = ls
			linkOrder = append(linkOrder, w.LinkID)
		}
		ls.affectedGbps += w.Mode.DataRateGbps
		ls.spares++
		ls.originals = append(ls.originals, w)
	}
	sort.Strings(linkOrder)
	for _, id := range linkOrder {
		ls := byLink[id]
		ls.spares += p.ExtraSpares[id]
		res.AffectedGbps += ls.affectedGbps
	}

	endpoints := make(map[string][2]topology.NodeID, len(p.IP.Links))
	for _, l := range p.IP.Links {
		endpoints[l.ID] = [2]topology.NodeID{l.A, l.B}
	}

	m := solver.NewModel("flexwan-restoration", solver.Maximize)
	type gVar struct {
		linkID string
		path   topology.Path
		mode   transponder.Mode
		startQ int
		pixels int
		id     solver.VarID
	}
	var gammas []gVar
	slotUsers := make(map[string][][]solver.VarID)

	for _, id := range linkOrder {
		ls := byLink[id]
		ep, ok := endpoints[id]
		if !ok {
			return nil, fmt.Errorf("restore: affected link %s missing from IP topology", id)
		}
		paths := post.KShortestPaths(ep[0], ep[1], p.k())
		var capTerms, cntTerms []solver.Term
		for _, path := range paths {
			fibers := make([]spectrum.FiberID, len(path.Fibers))
			for i, f := range path.Fibers {
				fibers[i] = spectrum.FiberID(f)
			}
			for _, mode := range p.Catalog.FeasibleModes(path.LengthKm) {
				pixels := mode.Pixels(p.Grid)
				if pixels > p.Grid.Pixels || mode.DataRateGbps > ls.affectedGbps {
					continue
				}
				prefix := "r[" + id + "," + mode.String() + ","
				for q := 0; q+pixels <= p.Grid.Pixels; q++ {
					iv := spectrum.Interval{Start: q, Count: pixels}
					// Constraint (9): the interval must be spare on every
					// fiber after the survivors keep their spectrum.
					free := true
					for _, f := range fibers {
						if !alloc.FiberMap(f).CanPlace(iv) {
							free = false
							break
						}
					}
					if !free {
						continue
					}
					gid := m.AddBinVar(prefix+strconv.Itoa(q)+"]", float64(mode.DataRateGbps))
					gammas = append(gammas, gVar{linkID: id, path: path, mode: mode, startQ: q, pixels: pixels, id: gid})
					capTerms = append(capTerms, solver.Term{Var: gid, Coef: float64(mode.DataRateGbps)})
					cntTerms = append(cntTerms, solver.Term{Var: gid, Coef: 1})
					for _, f := range path.Fibers {
						rows, ok := slotUsers[f]
						if !ok {
							rows = make([][]solver.VarID, p.Grid.Pixels)
							slotUsers[f] = rows
						}
						for w := q; w < q+pixels; w++ {
							rows[w] = append(rows[w], gid)
						}
					}
					if m.NumVars() > opts.MaxBuildVars() {
						return nil, fmt.Errorf("restore: exact MIP exceeds %d variables (Options.MaxVars; default per LP engine); use the heuristic Solve or raise the cap", opts.MaxBuildVars())
					}
				}
			}
		}
		if len(capTerms) == 0 {
			res.PerLink[id] = [2]int{ls.affectedGbps, 0}
			continue
		}
		if err := m.AddConstraint("cap["+id+"]", capTerms, solver.LE, float64(ls.affectedGbps)); err != nil {
			return nil, err
		}
		if err := m.AddConstraint("spares["+id+"]", cntTerms, solver.LE, float64(ls.spares)); err != nil {
			return nil, err
		}
	}

	if len(gammas) == 0 {
		for _, id := range linkOrder {
			res.PerLink[id] = [2]int{byLink[id].affectedGbps, 0}
		}
		return res, nil
	}

	fibers := make([]string, 0, len(slotUsers))
	for f := range slotUsers {
		fibers = append(fibers, f)
	}
	sort.Strings(fibers)
	var terms []solver.Term // reused row buffer; AddConstraint copies
	for _, f := range fibers {
		for w, users := range slotUsers[f] {
			if len(users) < 2 {
				continue
			}
			terms = terms[:0]
			for _, gid := range users {
				terms = append(terms, solver.Term{Var: gid, Coef: 1})
			}
			if err := m.AddConstraint("slot["+f+","+strconv.Itoa(w)+"]", terms, solver.LE, 1); err != nil {
				return nil, err
			}
		}
	}

	sol, err := m.SolveWithOptions(opts)
	if err != nil {
		return nil, fmt.Errorf("restore: %w", err)
	}
	res.Solver = plan.NewSolveStats(sol)
	if sol.Status == solver.Infeasible || sol.Status == solver.Unbounded {
		return nil, fmt.Errorf("restore: exact MIP %v — formulation bug (0 restoration is always feasible)", sol.Status)
	}
	if (sol.Status == solver.LimitReached || sol.Status == solver.IterLimit) && len(sol.Values) == 0 {
		return nil, fmt.Errorf("restore: solve limit (%s) reached with no incumbent", sol.Status)
	}

	restoredPerLink := make(map[string]int)
	nextOriginal := make(map[string]int)
	for _, g := range gammas {
		if sol.IntValue(g.id) != 1 {
			continue
		}
		iv := spectrum.Interval{Start: g.startQ, Count: g.pixels}
		fibers := make([]spectrum.FiberID, len(g.path.Fibers))
		for i, f := range g.path.Fibers {
			fibers[i] = spectrum.FiberID(f)
		}
		if err := alloc.AllocateExact(fibers, iv); err != nil {
			return nil, fmt.Errorf("restore: MIP solution violates spectrum constraints: %w", err)
		}
		r := Restored{LinkID: g.linkID, Path: g.path, Mode: g.mode, Interval: iv}
		ls := byLink[g.linkID]
		if i := nextOriginal[g.linkID]; i < len(ls.originals) {
			r.Original = ls.originals[i]
			nextOriginal[g.linkID] = i + 1
		}
		res.Restored = append(res.Restored, r)
		restoredPerLink[g.linkID] += g.mode.DataRateGbps
		res.RestoredGbps += g.mode.DataRateGbps
	}
	for _, id := range linkOrder {
		res.PerLink[id] = [2]int{byLink[id].affectedGbps, restoredPerLink[id]}
	}
	return res, nil
}
