package restore

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

// mustPath returns the shortest path between two ring nodes.
func mustPath(t *testing.T, g *topology.Optical, a, b topology.NodeID, wantFiber string) topology.Path {
	t.Helper()
	p, ok := g.ShortestPath(a, b)
	if !ok || len(p.Fibers) != 1 || p.Fibers[0] != wantFiber {
		t.Fatalf("shortest %s-%s = %+v, want single fiber %s", a, b, p, wantFiber)
	}
	return p
}

// TestSweepDeterministicAcrossWorkers asserts the sweep contract: the
// same base plan and scenario set produce identical Results (ordering
// and content) for every worker count, on a seeded T-backbone. Run
// under -race this also proves the per-scenario clones never share
// mutable state.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	n := workload.TBackbone(1)
	base, err := plan.Solve(plan.Problem{
		Optical: n.Optical, IP: n.IP, Catalog: transponder.SVT(), Grid: spectrum.DefaultGrid(),
	})
	if err != nil {
		t.Fatal(err)
	}
	prob := Problem{
		Optical: n.Optical, IP: n.IP, Catalog: transponder.SVT(),
		Grid: spectrum.DefaultGrid(), Base: base,
	}
	scs := SingleFiberScenarios(n.Optical)
	if len(scs) < 2 {
		t.Fatalf("T-backbone yielded %d scenarios", len(scs))
	}

	ref, err := SweepWithOptions(prob, scs, SweepOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Failed() != 0 {
		t.Fatalf("sequential sweep failed scenarios: %v", ref.FailedIDs())
	}
	if len(ref.Results) != len(scs) {
		t.Fatalf("sequential sweep: %d results for %d scenarios", len(ref.Results), len(scs))
	}
	for i, r := range ref.Results {
		if r.Scenario.ID != scs[i].ID {
			t.Fatalf("result %d is scenario %s, want input order %s", i, r.Scenario.ID, scs[i].ID)
		}
	}

	for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
		got, err := SweepWithOptions(prob, scs, SweepOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Results) != len(ref.Results) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got.Results), len(ref.Results))
		}
		for i := range got.Results {
			if !reflect.DeepEqual(*got.Results[i], *ref.Results[i]) {
				t.Errorf("workers=%d: result %d (%s) differs from sequential run",
					workers, i, scs[i].ID)
			}
		}
		if !reflect.DeepEqual(got.Capabilities(), ref.Capabilities()) {
			t.Errorf("workers=%d: Capabilities differ", workers)
		}
		if got.MeanCapability() != ref.MeanCapability() {
			t.Errorf("workers=%d: MeanCapability %v != %v", workers, got.MeanCapability(), ref.MeanCapability())
		}
	}
}

// ghostBase builds a base plan whose second wavelength belongs to an IP
// link that does not exist — cutting its fiber makes that scenario's
// solve fail while the rest of the sweep stays solvable.
func ghostBase(t *testing.T) (*plan.Result, Problem) {
	t.Helper()
	g := ring(t)
	ip := ipAB(t, 200)
	mode := transponder.Mode{DataRateGbps: 200, SpacingGHz: 50, ReachKm: 2000}
	base := &plan.Result{
		Wavelengths: []plan.Wavelength{
			{
				LinkID:   "e1",
				Path:     mustPath(t, g, "A", "B", "f1"),
				Mode:     mode,
				Interval: spectrum.Interval{Start: 0, Count: 4},
			},
			{
				LinkID:   "ghost",
				Path:     mustPath(t, g, "A", "C", "f2"),
				Mode:     mode,
				Interval: spectrum.Interval{Start: 4, Count: 4},
			},
		},
	}
	return base, Problem{
		Optical: g, IP: ip, Catalog: transponder.SVT(),
		Grid: spectrum.DefaultGrid(), Base: base,
	}
}

// TestSweepContinuesPastFailedScenario: one bad scenario must be
// recorded, not abort the sweep (the Fig 15/16 regeneration bug).
func TestSweepContinuesPastFailedScenario(t *testing.T) {
	_, prob := ghostBase(t)
	scs := []Scenario{
		{ID: "cut-f1", CutFibers: []string{"f1"}}, // affects e1: solvable
		{ID: "cut-f2", CutFibers: []string{"f2"}}, // affects ghost link: fails
		{ID: "cut-f3", CutFibers: []string{"f3"}}, // affects nothing: solvable
	}
	sweep, err := Sweep(prob, scs)
	if err != nil {
		t.Fatalf("sweep aborted on a single bad scenario: %v", err)
	}
	if sweep.Failed() != 1 {
		t.Fatalf("failed = %d (%v), want 1", sweep.Failed(), sweep.FailedIDs())
	}
	if ids := sweep.FailedIDs(); len(ids) != 1 || ids[0] != "cut-f2" {
		t.Errorf("failed IDs = %v, want [cut-f2]", ids)
	}
	if !strings.Contains(sweep.Errors[0].Error(), "cut-f2") {
		t.Errorf("ScenarioError lacks scenario ID: %v", sweep.Errors[0])
	}
	if len(sweep.Results) != 2 {
		t.Fatalf("results = %d, want 2 survivors", len(sweep.Results))
	}
	if sweep.Results[0].Scenario.ID != "cut-f1" || sweep.Results[1].Scenario.ID != "cut-f3" {
		t.Errorf("surviving results out of input order: %s, %s",
			sweep.Results[0].Scenario.ID, sweep.Results[1].Scenario.ID)
	}
	// Aggregates must be computed over the survivors only.
	if caps := sweep.Capabilities(); len(caps) != 2 {
		t.Errorf("Capabilities over %d entries, want 2", len(caps))
	}
	if mc := sweep.MeanCapability(); mc < 0 || mc > 1 {
		t.Errorf("MeanCapability = %v", mc)
	}
}

// TestSweepAllScenariosFail: only a fully failed sweep returns an error.
func TestSweepAllScenariosFail(t *testing.T) {
	_, prob := ghostBase(t)
	scs := []Scenario{
		{ID: "cut-f2", CutFibers: []string{"f2"}},
		{ID: "cut-f2-again", CutFibers: []string{"f2"}},
	}
	sweep, err := Sweep(prob, scs)
	if err == nil {
		t.Fatal("sweep with zero surviving scenarios returned nil error")
	}
	if sweep.Failed() != 2 {
		t.Errorf("failed = %d, want 2", sweep.Failed())
	}
}

func TestSweepCancelled(t *testing.T) {
	g := ring(t)
	p, r := planFor(t, g, ipAB(t, 600), transponder.SVT(), spectrum.DefaultGrid())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SweepWithOptions(Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: p.Grid, Base: r,
	}, SingleFiberScenarios(g), SweepOptions{Workers: 2, Context: ctx})
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
}

// TestMeanCapabilityMixedProbabilities is the regression for the
// weighting bug: an unset probability used to default to weight 1,
// drowning probabilistic scenarios (p ≈ 1e-4) by orders of magnitude.
func TestMeanCapabilityMixedProbabilities(t *testing.T) {
	mk := func(p float64, restored, affected int) *Result {
		return &Result{
			Scenario:     Scenario{Probability: p},
			AffectedGbps: affected,
			RestoredGbps: restored,
		}
	}
	// Mixed set: positive probabilities dominate, non-positive dropped.
	s := SweepResult{Results: []*Result{
		mk(0.25, 100, 100), // capability 1.0
		mk(0.75, 0, 100),   // capability 0.0
		mk(0, 0, 100),      // unset: must be dropped, not weight-1
	}}
	if got, want := s.MeanCapability(), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed MeanCapability = %v, want %v (unset scenario must not count)", got, want)
	}
	// Tiny probabilistic weights next to an unset scenario: the old
	// default-to-1 behaviour would return ≈ 0 here instead of 1.
	s = SweepResult{Results: []*Result{
		mk(1e-4, 100, 100),
		mk(3e-4, 100, 100),
		mk(0, 0, 100),
	}}
	if got := s.MeanCapability(); math.Abs(got-1) > 1e-12 {
		t.Errorf("probabilistic MeanCapability = %v, want 1", got)
	}
	// All probabilities unset: unweighted mean.
	s = SweepResult{Results: []*Result{
		mk(0, 100, 100),
		mk(0, 0, 100),
	}}
	if got, want := s.MeanCapability(), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("uniform MeanCapability = %v, want %v", got, want)
	}
	// All results dropped (defensive): neutral capability.
	s = SweepResult{Results: []*Result{}}
	if got := s.MeanCapability(); got != 1 {
		t.Errorf("empty MeanCapability = %v, want 1", got)
	}
}
