package restore

import (
	"testing"

	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// ring builds the paper's Fig. 4 situation: a short primary path and a
// longer detour.
//
//	A --f1(600)-- B
//	A --f2(500)-- C --f3(700)-- B     (detour: 1200 km)
func ring(t *testing.T) *topology.Optical {
	t.Helper()
	g := topology.New()
	for _, f := range []struct {
		id   string
		a, b topology.NodeID
		l    float64
	}{
		{"f1", "A", "B", 600},
		{"f2", "A", "C", 500},
		{"f3", "C", "B", 700},
	} {
		if err := g.AddFiber(f.id, f.a, f.b, f.l); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func planFor(t *testing.T, g *topology.Optical, ip *topology.IPTopology, cat transponder.Catalog, grid spectrum.Grid) (plan.Problem, *plan.Result) {
	t.Helper()
	p := plan.Problem{Optical: g, IP: ip, Catalog: cat, Grid: grid, K: 3}
	r, err := plan.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible() {
		t.Fatalf("base plan infeasible: %v", r.Unserved)
	}
	return p, r
}

func ipAB(t *testing.T, demand int) *topology.IPTopology {
	t.Helper()
	ip := &topology.IPTopology{}
	if err := ip.AddLink(topology.IPLink{ID: "e1", A: "A", B: "B", DemandGbps: demand}); err != nil {
		t.Fatal(err)
	}
	return ip
}

func TestRestoreFig4Scenario(t *testing.T) {
	// Paper Fig. 4 + §8 example: 600 km primary, 1200 km restoration.
	// RADWAN's wavelength was 300G (reach 1100) and must drop to 200G on
	// the 1200 km detour — capability 2/3. FlexWAN planned 600G@150
	// (reach 800) on the primary; on the detour it re-modulates (e.g.
	// 500G@125, reach 1200) and restores more with the one spare pair…
	// per-transponder it also loses, but with equal transponder counts
	// FlexWAN restores strictly more than RADWAN.
	g := ring(t)
	grid := spectrum.DefaultGrid()

	// RADWAN base: 300G demand → one 300G@75 wavelength on the 600 km path.
	pb, rb := planFor(t, g, ipAB(t, 300), transponder.RADWAN(), grid)
	resB, err := Solve(Problem{
		Optical: g, IP: pb.IP, Catalog: pb.Catalog, Grid: grid, Base: rb,
		Scenario: Scenario{ID: "cut-f1", CutFibers: []string{"f1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resB.AffectedGbps != 300 {
		t.Fatalf("RADWAN affected = %d, want 300", resB.AffectedGbps)
	}
	if resB.RestoredGbps != 200 {
		t.Errorf("RADWAN restored = %d, want 200 (must drop to QPSK at 1200 km)", resB.RestoredGbps)
	}

	// FlexWAN base with the same demand.
	pf, rf := planFor(t, g, ipAB(t, 300), transponder.SVT(), grid)
	resF, err := Solve(Problem{
		Optical: g, IP: pf.IP, Catalog: pf.Catalog, Grid: grid, Base: rf,
		Scenario: Scenario{ID: "cut-f1", CutFibers: []string{"f1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resF.AffectedGbps != 300 {
		t.Fatalf("FlexWAN affected = %d, want 300", resF.AffectedGbps)
	}
	// SVT can re-modulate to 300G with wider spacing (300G@100 reaches
	// 2000 km): full restoration.
	if resF.RestoredGbps != 300 {
		t.Errorf("FlexWAN restored = %d, want 300 (SVT widens spacing per Fig. 4)", resF.RestoredGbps)
	}
	if resF.Capability() <= resB.Capability() {
		t.Errorf("FlexWAN capability %v ≤ RADWAN %v", resF.Capability(), resB.Capability())
	}
	// The restored path must be the 1200 km detour.
	if len(resF.Restored) == 0 || resF.Restored[0].Path.LengthKm != 1200 {
		t.Errorf("restored path = %+v, want 1200 km detour", resF.Restored)
	}
	if s := resF.Restored[0].PathStretch(); s != 2 {
		t.Errorf("path stretch = %v, want 2.0", s)
	}
}

func TestRestoreNoFailureNoOp(t *testing.T) {
	g := ring(t)
	p, r := planFor(t, g, ipAB(t, 400), transponder.SVT(), spectrum.DefaultGrid())
	res, err := Solve(Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: p.Grid, Base: r,
		Scenario: Scenario{ID: "cut-f2", CutFibers: []string{"f2"}}, // unused fiber
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AffectedGbps != 0 || res.RestoredGbps != 0 || len(res.Restored) != 0 {
		t.Errorf("cut of unused fiber affected traffic: %+v", res)
	}
	if res.Capability() != 1 {
		t.Errorf("capability = %v, want 1", res.Capability())
	}
}

func TestRestoreSpareLimit(t *testing.T) {
	// Two wavelengths lost but detour spectrum only fits both if spares
	// allow; with zero extra spares the count of restored wavelengths is
	// bounded by the lost count.
	g := ring(t)
	p, r := planFor(t, g, ipAB(t, 1600), transponder.SVT(), spectrum.DefaultGrid())
	lost := len(r.Wavelengths)
	res, err := Solve(Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: p.Grid, Base: r,
		Scenario: Scenario{ID: "cut-f1", CutFibers: []string{"f1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Restored) > lost {
		t.Errorf("restored %d wavelengths with only %d spares", len(res.Restored), lost)
	}
	if res.RestoredGbps > res.AffectedGbps {
		t.Errorf("restored %d > affected %d (constraint 7 violated)", res.RestoredGbps, res.AffectedGbps)
	}
}

func TestRestoreSpectrumRespected(t *testing.T) {
	// Fill the detour with a competing link's traffic so restoration has
	// to fit in what is left. Grid of 12 pixels = 150 GHz.
	g := ring(t)
	ip := &topology.IPTopology{}
	for _, l := range []topology.IPLink{
		{ID: "e1", A: "A", B: "B", DemandGbps: 200},
		{ID: "e2", A: "A", B: "C", DemandGbps: 400}, // occupies f2
	} {
		if err := ip.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	grid := spectrum.Grid{PixelGHz: 12.5, Pixels: 12}
	p, r := planFor(t, g, ip, transponder.SVT(), grid)
	res, err := Solve(Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: grid, Base: r,
		Scenario: Scenario{ID: "cut-f1", CutFibers: []string{"f1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever was restored must not conflict with e2's surviving
	// allocation on f2: rebuild occupancy and verify.
	_, surviving := affected(r, []string{"f1"})
	alloc, err := survivorAllocator(grid, surviving)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Restored {
		fibers := make([]spectrum.FiberID, len(w.Path.Fibers))
		for i, f := range w.Path.Fibers {
			fibers[i] = spectrum.FiberID(f)
		}
		if err := alloc.AllocateExact(fibers, w.Interval); err != nil {
			t.Errorf("restored wavelength conflicts with survivors: %v", err)
		}
	}
}

func TestRestoreExtraSparesHelp(t *testing.T) {
	// With a tight detour, extra spares (FlexWAN+) can only help.
	g := ring(t)
	p, r := planFor(t, g, ipAB(t, 1600), transponder.SVT(), spectrum.DefaultGrid())
	base := Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: p.Grid, Base: r,
		Scenario: Scenario{ID: "cut-f1", CutFibers: []string{"f1"}},
	}
	without, err := Solve(base)
	if err != nil {
		t.Fatal(err)
	}
	withSpares := base
	withSpares.ExtraSpares = map[string]int{"e1": 4}
	with, err := Solve(withSpares)
	if err != nil {
		t.Fatal(err)
	}
	if with.RestoredGbps < without.RestoredGbps {
		t.Errorf("extra spares reduced restoration: %d < %d", with.RestoredGbps, without.RestoredGbps)
	}
}

func TestSingleFiberScenarios(t *testing.T) {
	g := ring(t)
	scs := SingleFiberScenarios(g)
	if len(scs) != 3 {
		t.Fatalf("scenarios = %d, want 3", len(scs))
	}
	totalP := 0.0
	seen := map[string]bool{}
	for _, s := range scs {
		if len(s.CutFibers) != 1 {
			t.Errorf("scenario %s cuts %d fibers", s.ID, len(s.CutFibers))
		}
		if seen[s.CutFibers[0]] {
			t.Errorf("fiber %s cut twice", s.CutFibers[0])
		}
		seen[s.CutFibers[0]] = true
		totalP += s.Probability
	}
	if totalP < 0.999 || totalP > 1.001 {
		t.Errorf("probabilities sum to %v", totalP)
	}
}

func TestSweep(t *testing.T) {
	g := ring(t)
	p, r := planFor(t, g, ipAB(t, 600), transponder.SVT(), spectrum.DefaultGrid())
	sweep, err := Sweep(Problem{
		Optical: g, IP: p.IP, Catalog: p.Catalog, Grid: p.Grid, Base: r,
	}, SingleFiberScenarios(g))
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 3 {
		t.Fatalf("sweep results = %d", len(sweep.Results))
	}
	mc := sweep.MeanCapability()
	if mc < 0 || mc > 1 {
		t.Errorf("mean capability = %v out of range", mc)
	}
	caps := sweep.Capabilities()
	for i := 1; i < len(caps); i++ {
		if caps[i] < caps[i-1] {
			t.Error("Capabilities not sorted")
		}
	}
	for _, s := range sweep.PathStretches() {
		if s <= 0 {
			t.Errorf("nonpositive path stretch %v", s)
		}
	}
}

func TestPlusSpares(t *testing.T) {
	flex := &plan.Result{PerLink: map[string]plan.LinkPlan{
		"e1": {Wavelengths: 2},
		"e2": {Wavelengths: 5},
		"e3": {Wavelengths: 4},
	}}
	baseline := &plan.Result{PerLink: map[string]plan.LinkPlan{
		"e1": {Wavelengths: 6}, // saved 4 → half = 2
		"e2": {Wavelengths: 5}, // saved 0
		// e3 missing from baseline
	}}
	spares := PlusSpares(flex, baseline, 0.5)
	if spares["e1"] != 2 {
		t.Errorf("e1 spares = %d, want 2", spares["e1"])
	}
	if _, ok := spares["e2"]; ok {
		t.Error("e2 should have no spares")
	}
	if _, ok := spares["e3"]; ok {
		t.Error("e3 (missing from baseline) should have no spares")
	}
}

func TestRestoreNilBase(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Error("nil base accepted")
	}
}

func TestMeanCapabilityEmpty(t *testing.T) {
	var s SweepResult
	if s.MeanCapability() != 1 {
		t.Errorf("empty sweep capability = %v, want 1", s.MeanCapability())
	}
}
