package restore

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flexwan/internal/topology"
)

// DoubleFiberScenarios enumerates all simultaneous 2-fiber failure
// scenarios — the deterministic k=2 point of the k-failure model the
// paper cites ([40], forward fault correction). Each pair is equally
// probable. Use with care: the count is quadratic in fibers.
func DoubleFiberScenarios(g *topology.Optical) []Scenario {
	fibers := g.Fibers()
	var out []Scenario
	for i := 0; i < len(fibers); i++ {
		for j := i + 1; j < len(fibers); j++ {
			out = append(out, Scenario{
				ID:        fmt.Sprintf("cut-%s+%s", fibers[i].ID, fibers[j].ID),
				CutFibers: []string{fibers[i].ID, fibers[j].ID},
			})
		}
	}
	for i := range out {
		out[i].Probability = 1 / float64(len(out))
	}
	return out
}

// ProbabilisticScenarios samples n failure scenarios from the
// probabilistic link failure model the paper adopts from TEAVAR [17]:
// each fiber is cut independently with a probability proportional to its
// length (field data shows cuts arrive roughly per fiber-kilometre —
// cutsPerThousandKm is the per-event cut probability of a 1000 km
// segment), conditioned on at least one cut. Scenario probabilities are
// the normalized joint likelihoods, and duplicate fiber sets are merged.
// The same seed yields the same scenario set.
func ProbabilisticScenarios(g *topology.Optical, seed int64, n int, cutsPerThousandKm float64) []Scenario {
	if n <= 0 {
		return nil
	}
	fibers := g.Fibers()
	if len(fibers) == 0 {
		return nil
	}
	pOf := func(f topology.Fiber) float64 {
		p := cutsPerThousandKm * f.LengthKm / 1000
		if p > 0.9 {
			p = 0.9
		}
		if p < 1e-6 {
			p = 1e-6
		}
		return p
	}
	rng := rand.New(rand.NewSource(seed))
	type draw struct {
		key    string
		cut    []string
		weight float64
	}
	draws := make(map[string]draw)
	for attempts := 0; len(draws) < n && attempts < n*200; attempts++ {
		var cut []string
		weight := 1.0
		for _, f := range fibers {
			p := pOf(f)
			if rng.Float64() < p {
				cut = append(cut, f.ID)
				weight *= p
			} else {
				weight *= 1 - p
			}
		}
		if len(cut) == 0 {
			continue // condition on ≥ 1 failure
		}
		sort.Strings(cut)
		key := ""
		for _, id := range cut {
			key += id + "+"
		}
		if _, dup := draws[key]; dup {
			continue
		}
		draws[key] = draw{key: key, cut: cut, weight: weight}
	}
	keys := make([]string, 0, len(draws))
	total := 0.0
	for k, d := range draws {
		keys = append(keys, k)
		total += d.weight
	}
	sort.Strings(keys)
	out := make([]Scenario, 0, len(keys))
	for _, k := range keys {
		d := draws[k]
		p := d.weight / total
		if math.IsNaN(p) || math.IsInf(p, 0) {
			p = 1 / float64(len(draws))
		}
		out = append(out, Scenario{
			ID:          "prob-" + d.key[:len(d.key)-1],
			CutFibers:   d.cut,
			Probability: p,
		})
	}
	return out
}
