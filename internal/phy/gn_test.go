package phy

import (
	"math"
	"testing"
)

func TestGNEffectiveLength(t *testing.T) {
	g := DefaultGN()
	leff := g.effLengthM() / 1000 // km
	// For 0.2 dB/km, L_eff,a = 1/α ≈ 21.7 km; an 80 km span is long
	// enough that L_eff ≈ L_eff,a.
	if leff < 20 || leff > 22 {
		t.Errorf("L_eff = %v km, want ≈ 21.7", leff)
	}
	if la := g.asymptoticEffLengthM() / 1000; math.Abs(la-21.71) > 0.1 {
		t.Errorf("L_eff,a = %v km", la)
	}
}

func TestGNASEPower(t *testing.T) {
	g := DefaultGN()
	ase := g.SpanASEPowerW(75)
	// Back-of-envelope: gain 16 dB (≈40×), NF 5 dB (≈3.16), hν ≈ 1.28e-19,
	// B = 75 GHz → ≈ 1.2 µW.
	if ase < 0.5e-6 || ase > 3e-6 {
		t.Errorf("ASE per span = %v W, want ≈ 1.2e-6", ase)
	}
}

func TestGNNLIScalesCubically(t *testing.T) {
	g := DefaultGN()
	p1 := g.SpanNLIPowerW(0.001, 75)
	p2 := g.SpanNLIPowerW(0.002, 75)
	if ratio := p2 / p1; math.Abs(ratio-8) > 0.01 {
		t.Errorf("NLI(2P)/NLI(P) = %v, want 8 (cubic)", ratio)
	}
	if g.SpanNLIPowerW(0, 75) != 0 || g.SpanNLIPowerW(0.001, 0) != 0 {
		t.Error("degenerate NLI inputs should give 0")
	}
}

func TestGNOptimalLaunch(t *testing.T) {
	g := DefaultGN()
	p := g.OptimalLaunchW(75)
	// Coherent C-band systems run around −2..+3 dBm per channel.
	dBm := 10 * math.Log10(p*1000)
	if dBm < -4 || dBm > 5 {
		t.Errorf("optimal launch = %.1f dBm, want ≈ 0", dBm)
	}
	// At optimum, NLI = ASE/2.
	ase := g.SpanASEPowerW(75)
	nli := g.SpanNLIPowerW(p, 75)
	if math.Abs(nli-ase/2)/ase > 0.01 {
		t.Errorf("NLI at optimum = %v, want ASE/2 = %v", nli, ase/2)
	}
	// SNR at optimum beats nearby launch powers.
	at := func(w float64) float64 { return g.SNRAfterSpans(10, w, 75) }
	if at(p) < at(p*1.3) || at(p) < at(p/1.3) {
		t.Error("optimal launch is not an SNR maximum")
	}
}

func TestGNSNRMonotoneInSpans(t *testing.T) {
	g := DefaultGN()
	p := g.OptimalLaunchW(75)
	prev := math.Inf(1)
	for n := 1; n <= 60; n++ {
		snr := g.SNRAfterSpans(n, p, 75)
		if snr >= prev {
			t.Fatalf("SNR did not degrade at span %d", n)
		}
		prev = snr
	}
	// Exactly inverse-linear: SNR(2n) = SNR(n)/2.
	if r := g.SNRAfterSpans(10, p, 75) / g.SNRAfterSpans(20, p, 75); math.Abs(r-2) > 1e-9 {
		t.Errorf("SNR(10)/SNR(20) = %v, want 2", r)
	}
}

func TestRequiredSNRdBOrdering(t *testing.T) {
	// Higher-order constellations need more SNR; stronger FEC needs less.
	mods := []Modulation{QPSK, QAM8, QAM16, QAM64, QAM256}
	prev := -100.0
	for _, m := range mods {
		req := RequiredSNRdB(m, FEC27)
		if req <= prev {
			t.Errorf("%s requires %v dB, not above previous %v", m.Name, req, prev)
		}
		prev = req
	}
	if RequiredSNRdB(QAM16, FEC27) >= RequiredSNRdB(QAM16, FEC15) {
		t.Error("stronger FEC should lower the SNR requirement")
	}
	// Reference points: DP-QPSK with strong SD-FEC needs ~5–7 dB.
	q := RequiredSNRdB(QPSK, FEC27)
	if q < 3 || q > 9 {
		t.Errorf("QPSK@FEC27 requires %v dB, expected ≈ 6", q)
	}
}

func TestGNMaxReachOrdering(t *testing.T) {
	g := DefaultGN()
	// Reach shrinks as constellations grow (at 75 GHz channels).
	reaches := map[string]float64{}
	for _, m := range []Modulation{QPSK, QAM8, QAM16, QAM64} {
		reaches[m.Name] = g.MaxReachKm(RequiredSNRdB(m, FEC27), 75)
	}
	if !(reaches["QPSK"] > reaches["8QAM"] && reaches["8QAM"] > reaches["16QAM"] && reaches["16QAM"] > reaches["64QAM"]) {
		t.Errorf("reach ordering violated: %v", reaches)
	}
	// QPSK long-haul reach is thousands of km.
	if reaches["QPSK"] < 2000 {
		t.Errorf("GN QPSK reach = %v km, implausibly short", reaches["QPSK"])
	}
	// An impossible requirement gives zero reach.
	if g.MaxReachKm(60, 75) != 0 {
		t.Error("60 dB requirement should be unreachable")
	}
}

func TestGNPlausibilityOfTable2Scale(t *testing.T) {
	// The GN model should agree with Table 2 within small factors on the
	// workhorse formats — the independent physics cross-check.
	g := DefaultGN()
	cases := []struct {
		mod     Modulation
		bwGHz   float64
		tableKm float64 // closest Table 2 analog
	}{
		{QPSK, 75, 2000}, // 200G@75 ≈ DP-QPSK at 56 GBd
		{QAM8, 75, 1100}, // 300G@75 ≈ DP-8QAM
		{QAM16, 75, 600}, // 400G@75 ≈ DP-16QAM
	}
	for _, tc := range cases {
		gn := g.MaxReachKm(RequiredSNRdB(tc.mod, FEC27), tc.bwGHz)
		ratio := gn / tc.tableKm
		if ratio < 0.4 || ratio > 6 {
			t.Errorf("%s: GN reach %v km vs Table 2 %v km (ratio %.1f) — model implausible",
				tc.mod.Name, gn, tc.tableKm, ratio)
		}
	}
}
