// Package phy models the physical layer of a long-haul optical link:
// span attenuation, EDFA amplifier noise, OSNR/SNR versus distance,
// Shannon capacity limits, and pre/post-FEC bit error rates.
//
// FlexWAN's testbed (§6 of the paper) measures, for each transponder
// format, the maximum fiber length at which the post-FEC BER stays zero.
// This package provides the noise-accumulation model that the simulated
// testbed (internal/device, internal/eval) uses to reproduce that sweep,
// and the analytic helpers (Shannon limit, required SNR per modulation)
// behind the paper's motivation (§3.1).
//
// The model is the standard engineering OSNR budget: launch power minus
// span loss minus amplifier noise figure, with amplified spontaneous
// emission accumulating linearly over the amplifier chain,
//
//	OSNR_dB = 58 + P_launch − L_span − NF − 10·log10(N_spans)
//
// where 58 dB is the reference constant for a 12.5 GHz (0.1 nm) noise
// bandwidth at 1550 nm. Real deployments add nonlinear penalties; the
// paper's planning inputs are *measured* reaches (Table 2), so FlexWAN's
// transponder catalog carries those measured values and this model is
// used (a) to invert reach into a required-OSNR threshold for the device
// simulators and (b) for the far-from-Shannon analysis.
package phy

import (
	"fmt"
	"math"
)

// RefNoiseBandwidthGHz is the 0.1 nm reference bandwidth OSNR is quoted in.
const RefNoiseBandwidthGHz = 12.5

// osnrRefConstDB is 10·log10(1 mW / (h·ν·B_ref)) at 1550 nm, B_ref 12.5 GHz.
const osnrRefConstDB = 58.0

// LinkModel describes a homogeneous amplified line system. The zero value
// is not useful; start from DefaultLink and override fields as needed.
type LinkModel struct {
	// SpanKm is the fiber length between amplifiers. The paper's testbed
	// inserts an amplifier every 50–100 km; 80 km is the common figure.
	SpanKm float64
	// AttenuationDBPerKm is fiber loss (SMF-28 ≈ 0.2 dB/km at 1550 nm).
	AttenuationDBPerKm float64
	// NoiseFigureDB is the EDFA noise figure.
	NoiseFigureDB float64
	// LaunchPowerDBm is per-channel launch power into each span.
	LaunchPowerDBm float64
	// PenaltyDB lumps filtering/nonlinearity margin subtracted from the
	// received OSNR.
	PenaltyDB float64
}

// DefaultLink returns the line-system parameters used throughout the
// reproduction: 80 km spans, 0.2 dB/km, 5 dB NF, 0 dBm launch, 1 dB margin.
func DefaultLink() LinkModel {
	return LinkModel{
		SpanKm:             80,
		AttenuationDBPerKm: 0.2,
		NoiseFigureDB:      5.0,
		LaunchPowerDBm:     0.0,
		PenaltyDB:          1.0,
	}
}

// Spans returns the number of amplified spans needed for a path of
// distKm. A path shorter than one span still crosses one amplifier.
func (l LinkModel) Spans(distKm float64) int {
	if distKm <= 0 {
		return 1
	}
	return int(math.Ceil(distKm / l.SpanKm))
}

// SpanLossDB returns the loss of one full span.
func (l LinkModel) SpanLossDB() float64 { return l.SpanKm * l.AttenuationDBPerKm }

// OSNRdB returns the received optical SNR (0.1 nm reference bandwidth)
// after distKm of amplified transmission.
func (l LinkModel) OSNRdB(distKm float64) float64 {
	n := l.Spans(distKm)
	return osnrRefConstDB + l.LaunchPowerDBm - l.SpanLossDB() -
		l.NoiseFigureDB - 10*math.Log10(float64(n)) - l.PenaltyDB
}

// SNRdB converts OSNR to electrical SNR in the signal bandwidth
// (≈ the symbol rate): SNR = OSNR + 10·log10(B_ref / baud).
func (l LinkModel) SNRdB(distKm, baudGBd float64) float64 {
	if baudGBd <= 0 {
		return math.Inf(-1)
	}
	return l.OSNRdB(distKm) + 10*math.Log10(RefNoiseBandwidthGHz/baudGBd)
}

// MaxReachKm returns the longest distance (in whole spans) at which the
// received OSNR stays at or above requiredOSNRdB. It returns 0 when even
// one span is too noisy.
func (l LinkModel) MaxReachKm(requiredOSNRdB float64) float64 {
	one := osnrRefConstDB + l.LaunchPowerDBm - l.SpanLossDB() - l.NoiseFigureDB - l.PenaltyDB
	if one < requiredOSNRdB {
		return 0
	}
	// OSNR(n) = one − 10·log10(n) ≥ required  ⇒  n ≤ 10^((one−required)/10).
	// The epsilon absorbs round-trip floating-point error so a threshold
	// derived from an n-span reach inverts back to exactly n spans.
	n := math.Floor(math.Pow(10, (one-requiredOSNRdB)/10) + 1e-9)
	return n * l.SpanKm
}

// RequiredOSNRForReach inverts the budget: the OSNR available at exactly
// reachKm. A signal whose threshold equals this value decodes error-free
// up to reachKm and fails beyond it. This is how the simulated "vendor A"
// hardware derives its datasheet thresholds from Table 2's measured
// reaches.
func (l LinkModel) RequiredOSNRForReach(reachKm float64) float64 {
	return l.OSNRdB(reachKm)
}

// ShannonCapacityGbps returns the Shannon–Hartley limit
// C = W·log2(1+SNR) for a channel of spacingGHz at snrDB, in Gbps.
// This is the paper's formulation (§3.1, footnote 2): one signal
// dimension per channel-spacing hertz, which folds the practical
// gap-to-capacity of deployed coherent systems into the bound.
func ShannonCapacityGbps(spacingGHz, snrDB float64) float64 {
	if spacingGHz <= 0 {
		return 0
	}
	snr := FromDB(snrDB)
	return spacingGHz * math.Log2(1+snr)
}

// ShannonMinSNRdB returns the minimum SNR (dB) at which spacingGHz of
// spectrum can carry rateGbps under the same formulation.
func ShannonMinSNRdB(rateGbps, spacingGHz float64) float64 {
	if spacingGHz <= 0 || rateGbps <= 0 {
		return math.Inf(1)
	}
	return ToDB(math.Pow(2, rateGbps/spacingGHz) - 1)
}

// ToDB converts a linear power ratio to decibels.
func ToDB(lin float64) float64 { return 10 * math.Log10(lin) }

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// Modulation describes one constellation used by a transponder's DSP.
// BitsPerSymbol counts both polarizations (DP-QPSK = 4, DP-16QAM = 8,
// DP-256QAM = 16). PCS formats take fractional values.
type Modulation struct {
	Name          string
	BitsPerSymbol float64
}

// Common coherent constellations.
var (
	BPSK    = Modulation{Name: "BPSK", BitsPerSymbol: 2}
	QPSK    = Modulation{Name: "QPSK", BitsPerSymbol: 4}
	QAM8    = Modulation{Name: "8QAM", BitsPerSymbol: 6}
	QAM16   = Modulation{Name: "16QAM", BitsPerSymbol: 8}
	QAM32   = Modulation{Name: "32QAM", BitsPerSymbol: 10}
	QAM64   = Modulation{Name: "64QAM", BitsPerSymbol: 12}
	QAM256  = Modulation{Name: "256QAM", BitsPerSymbol: 16}
	Invalid = Modulation{Name: "invalid"}
)

// PCS returns a probabilistically-shaped constellation carrying the given
// fractional bits per dual-polarization symbol (§4.2: PCS supports
// finer-granularity data rates).
func PCS(bitsPerSymbol float64) Modulation {
	return Modulation{Name: fmt.Sprintf("PCS-%.2fb", bitsPerSymbol), BitsPerSymbol: bitsPerSymbol}
}

// qfunc is the Gaussian tail probability Q(x) = 0.5·erfc(x/√2).
func qfunc(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// PreFECBER estimates the pre-FEC bit error rate of the modulation at the
// given per-symbol SNR (linear, per polarization). It uses the standard
// Gray-coded square-QAM approximation
//
//	BER ≈ (4/m)·(1 − 1/√M)·Q(√(3·SNR/(M−1)))
//
// with m bits per polarization and M = 2^m constellation points, and the
// exact expressions for BPSK and QPSK. PCS formats interpolate between
// the bracketing square constellations.
func PreFECBER(mod Modulation, snrLin float64) float64 {
	if snrLin <= 0 {
		return 0.5
	}
	mPol := mod.BitsPerSymbol / 2 // bits per polarization
	switch {
	case mPol <= 0:
		return 0.5
	case mPol <= 1: // BPSK per polarization
		return qfunc(math.Sqrt(2 * snrLin))
	case mPol <= 2: // QPSK per polarization
		return qfunc(math.Sqrt(snrLin))
	default:
		ber := func(m float64) float64 {
			M := math.Pow(2, m)
			return (4 / m) * (1 - 1/math.Sqrt(M)) * qfunc(math.Sqrt(3*snrLin/(M-1)))
		}
		lo, hi := math.Floor(mPol), math.Ceil(mPol)
		if lo == hi {
			return ber(mPol)
		}
		frac := mPol - lo
		return (1-frac)*ber(lo) + frac*ber(hi)
	}
}

// FEC describes a forward-error-correction configuration: the fraction of
// redundant data added and the pre-FEC BER it can fully correct. FlexWAN's
// SVT offers multiple FEC strengths (§4.2: e.g. 15% and 27% overhead).
type FEC struct {
	Name         string
	Overhead     float64 // redundant fraction, e.g. 0.27
	ThresholdBER float64 // maximum correctable pre-FEC BER
}

// Standard soft-decision FEC configurations.
var (
	FEC15 = FEC{Name: "SD-FEC 15%", Overhead: 0.15, ThresholdBER: 1.25e-2}
	FEC27 = FEC{Name: "SD-FEC 27%", Overhead: 0.27, ThresholdBER: 2.4e-2}
)

// PostFECBER returns the residual error rate after FEC: zero when the
// pre-FEC BER is within the code's correction threshold, and the
// uncorrected pre-FEC BER otherwise (the decode collapses, §6: "positive
// values of the post-FEC BER show the SNR is too low").
func PostFECBER(preFEC float64, fec FEC) float64 {
	if preFEC <= fec.ThresholdBER {
		return 0
	}
	return preFEC
}
