package phy

import (
	"math"
)

// GNParams parameterizes the Gaussian-noise (GN) model of nonlinear
// fiber propagation — the standard first-principles estimate of
// transmission reach in modern coherent systems. The linear LinkModel in
// this package carries the *measured* behaviour (Table 2 via datasheet
// thresholds); the GN model provides the independent physics check that
// those measurements are plausible (EXPERIMENTS.md, Table 2 analytic
// cross-check), and supports launch-power optimization studies.
//
// The implementation is the closed-form incoherent GN reference formula
// for a flat (Nyquist-like) WDM load:
//
//	G_NLI = (8/27)·(γ·L_eff)²·G³·asinh((π²/2)·|β₂|·L_eff,a·B_WDM²) / (π·|β₂|·L_eff,a)
//
// accumulated linearly over spans, with ASE from each amplifier.
type GNParams struct {
	// SpanKm is the amplifier spacing.
	SpanKm float64
	// AttenuationDBPerKm is fiber loss.
	AttenuationDBPerKm float64
	// NoiseFigureDB is the EDFA noise figure.
	NoiseFigureDB float64
	// GammaPerWKm is the fiber nonlinear coefficient γ (SMF ≈ 1.3 /W/km).
	GammaPerWKm float64
	// Beta2Ps2PerKm is group-velocity dispersion β₂ (SMF ≈ −21.7 ps²/km;
	// store the magnitude).
	Beta2Ps2PerKm float64
	// TotalBandwidthGHz is the occupied WDM bandwidth B_WDM generating
	// cross-channel interference (full C-band for a loaded system).
	TotalBandwidthGHz float64
	// MarginDB is the implementation margin deployed systems budget on
	// top of the ideal GN prediction: transceiver back-to-back penalty,
	// filtering, aging, repair slack. Commercial planning uses 3–6 dB.
	MarginDB float64
}

// DefaultGN returns SMF-28 C-band parameters matching DefaultLink's span
// layout.
func DefaultGN() GNParams {
	return GNParams{
		SpanKm:             80,
		AttenuationDBPerKm: 0.2,
		NoiseFigureDB:      5.0,
		GammaPerWKm:        1.3,
		Beta2Ps2PerKm:      21.7,
		TotalBandwidthGHz:  4800,
		MarginDB:           5,
	}
}

// Physical constants.
const (
	planckJs       = 6.62607015e-34
	carrierFreqTHz = 193.4 // C-band center
)

// alphaPerM returns the power attenuation coefficient in 1/m.
func (g GNParams) alphaPerM() float64 {
	return g.AttenuationDBPerKm * math.Ln10 / 10 / 1000
}

// effLengthM returns the span's nonlinear effective length L_eff in m.
func (g GNParams) effLengthM() float64 {
	a := g.alphaPerM()
	return (1 - math.Exp(-a*g.SpanKm*1000)) / a
}

// asymptoticEffLengthM returns L_eff,a = 1/α in m.
func (g GNParams) asymptoticEffLengthM() float64 { return 1 / g.alphaPerM() }

// SpanASEPowerW returns the amplified-spontaneous-emission power one
// amplifier adds into a receiver bandwidth of bwGHz.
func (g GNParams) SpanASEPowerW(bwGHz float64) float64 {
	gainLin := math.Pow(10, g.SpanKm*g.AttenuationDBPerKm/10)
	nfLin := math.Pow(10, g.NoiseFigureDB/10)
	hnu := planckJs * carrierFreqTHz * 1e12
	return (gainLin - 1) * hnu * nfLin * bwGHz * 1e9
}

// SpanNLIPowerW returns the nonlinear-interference power one span
// generates inside a channel of chBWGHz when launching launchW watts per
// channel bandwidth (flat PSD across TotalBandwidthGHz).
func (g GNParams) SpanNLIPowerW(launchW, chBWGHz float64) float64 {
	if launchW <= 0 || chBWGHz <= 0 {
		return 0
	}
	psd := launchW / (chBWGHz * 1e9) // W/Hz, flat across the WDM comb
	beta2 := g.Beta2Ps2PerKm * 1e-24 / 1000
	leff := g.effLengthM()
	leffA := g.asymptoticEffLengthM()
	gamma := g.GammaPerWKm / 1000
	bTot := g.TotalBandwidthGHz * 1e9
	gnli := (8.0 / 27.0) * gamma * gamma * leff * leff * psd * psd * psd *
		math.Asinh((math.Pi*math.Pi/2)*beta2*leffA*bTot*bTot) /
		(math.Pi * beta2 * leffA)
	return gnli * chBWGHz * 1e9
}

// SNRAfterSpans returns the linear SNR of a channel of chBWGHz after n
// amplified spans at the given per-channel launch power.
func (g GNParams) SNRAfterSpans(n int, launchW, chBWGHz float64) float64 {
	if n < 1 {
		n = 1
	}
	noise := float64(n) * (g.SpanASEPowerW(chBWGHz) + g.SpanNLIPowerW(launchW, chBWGHz))
	if noise <= 0 {
		return math.Inf(1)
	}
	return launchW / noise
}

// OptimalLaunchW returns the launch power maximizing SNR: the classic
// P_opt = (P_ASE / 2η)^(1/3) where NLI = η·P³. At this point NLI is half
// the ASE.
func (g GNParams) OptimalLaunchW(chBWGHz float64) float64 {
	ase := g.SpanASEPowerW(chBWGHz)
	eta := g.SpanNLIPowerW(1, chBWGHz) // NLI at 1 W = η
	if eta <= 0 {
		return 0.001
	}
	return math.Cbrt(ase / (2 * eta))
}

// MaxReachKm returns the GN-predicted reach: the largest whole-span
// distance at which the channel's SNR (at optimal launch) stays at or
// above requiredSNRdB plus the implementation margin.
func (g GNParams) MaxReachKm(requiredSNRdB, chBWGHz float64) float64 {
	p := g.OptimalLaunchW(chBWGHz)
	required := FromDB(requiredSNRdB + g.MarginDB)
	snr1 := g.SNRAfterSpans(1, p, chBWGHz)
	if snr1 < required {
		return 0
	}
	// Noise grows linearly with spans: n_max = snr1/required.
	n := math.Floor(snr1 / required)
	return n * g.SpanKm
}

// RequiredSNRdB inverts the pre-FEC BER curve: the minimum SNR at which
// the modulation's pre-FEC BER stays within the FEC threshold. Found by
// bisection; the curve is monotone.
func RequiredSNRdB(mod Modulation, fec FEC) float64 {
	lo, hi := -10.0, 40.0
	if PreFECBER(mod, FromDB(hi)) > fec.ThresholdBER {
		return math.Inf(1) // uncorrectable even at 40 dB
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if PreFECBER(mod, FromDB(mid)) > fec.ThresholdBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}
