package phy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpans(t *testing.T) {
	l := DefaultLink()
	tests := []struct {
		dist float64
		want int
	}{
		{0, 1}, {-5, 1}, {1, 1}, {80, 1}, {81, 2}, {160, 2}, {5000, 63},
	}
	for _, tt := range tests {
		if got := l.Spans(tt.dist); got != tt.want {
			t.Errorf("Spans(%v) = %d, want %d", tt.dist, got, tt.want)
		}
	}
}

func TestOSNRMonotoneDecreasing(t *testing.T) {
	l := DefaultLink()
	prev := math.Inf(1)
	for d := 100.0; d <= 6000; d += 100 {
		osnr := l.OSNRdB(d)
		if osnr > prev+1e-9 {
			t.Fatalf("OSNR increased with distance at %v km: %v > %v", d, osnr, prev)
		}
		prev = osnr
	}
}

func TestOSNRValuesReasonable(t *testing.T) {
	l := DefaultLink()
	// One span: 58 + 0 − 16 − 5 − 0 − 1 = 36 dB.
	if got := l.OSNRdB(80); math.Abs(got-36) > 1e-9 {
		t.Errorf("OSNR(80km) = %v dB, want 36", got)
	}
	// 10 spans: 36 − 10 = 26 dB.
	if got := l.OSNRdB(800); math.Abs(got-26) > 1e-9 {
		t.Errorf("OSNR(800km) = %v dB, want 26", got)
	}
}

func TestMaxReachInvertsOSNR(t *testing.T) {
	l := DefaultLink()
	for _, reach := range []float64{80, 400, 1100, 2000, 5000} {
		req := l.RequiredOSNRForReach(reach)
		got := l.MaxReachKm(req)
		// Inversion is exact up to span granularity.
		if math.Abs(got-math.Ceil(reach/l.SpanKm)*l.SpanKm) > 1e-6 {
			t.Errorf("MaxReachKm(RequiredOSNRForReach(%v)) = %v", reach, got)
		}
		// One more span must violate the threshold.
		if l.OSNRdB(got+l.SpanKm) >= req {
			t.Errorf("OSNR at %v km still meets threshold for reach %v", got+l.SpanKm, reach)
		}
	}
}

func TestMaxReachTooNoisy(t *testing.T) {
	l := DefaultLink()
	if got := l.MaxReachKm(100); got != 0 {
		t.Errorf("MaxReachKm(100 dB) = %v, want 0", got)
	}
}

func TestSNRBandwidthAdjustment(t *testing.T) {
	l := DefaultLink()
	// At baud = reference bandwidth, SNR equals OSNR.
	if got, want := l.SNRdB(800, RefNoiseBandwidthGHz), l.OSNRdB(800); math.Abs(got-want) > 1e-9 {
		t.Errorf("SNR at reference baud = %v, want %v", got, want)
	}
	// Wider signals integrate more noise: lower SNR.
	if l.SNRdB(800, 50) >= l.OSNRdB(800) {
		t.Error("SNR at 50 GBd should be below OSNR")
	}
	if !math.IsInf(l.SNRdB(800, 0), -1) {
		t.Error("SNR at zero baud should be -Inf")
	}
}

func TestShannonRoundTrip(t *testing.T) {
	// C(W, minSNR(C, W)) == C.
	for _, tc := range []struct{ rate, spacing float64 }{
		{100, 50}, {400, 75}, {800, 112.5}, {300, 87.5},
	} {
		snr := ShannonMinSNRdB(tc.rate, tc.spacing)
		got := ShannonCapacityGbps(tc.spacing, snr)
		if math.Abs(got-tc.rate) > 1e-6 {
			t.Errorf("Shannon round trip (%v Gbps, %v GHz): got %v", tc.rate, tc.spacing, got)
		}
	}
}

func TestShannonEdgeCases(t *testing.T) {
	if got := ShannonCapacityGbps(0, 20); got != 0 {
		t.Errorf("capacity at zero spacing = %v", got)
	}
	if !math.IsInf(ShannonMinSNRdB(100, 0), 1) {
		t.Error("min SNR at zero spacing should be +Inf")
	}
	if !math.IsInf(ShannonMinSNRdB(0, 50), 1) {
		// Zero rate: defined as +Inf guard (invalid request).
		t.Error("min SNR for zero rate should be +Inf")
	}
}

func TestShannonMotivation(t *testing.T) {
	// §3.1: at 75 GHz spacing a wavelength cannot carry 800 Gbps even at
	// very high SNR achievable on short paths, but 112.5 GHz can at high
	// SNR. Verify the limit ordering the paper's argument relies on.
	l := DefaultLink()
	snr200km := l.SNRdB(200, 50)
	if ShannonCapacityGbps(75, snr200km) >= 800 {
		t.Errorf("75 GHz channel at 200 km SNR carries %v Gbps — should be Shannon-limited below 800",
			ShannonCapacityGbps(75, snr200km))
	}
	// Required SNR for 800G at 75 GHz is enormous (~32 dB+).
	if req := ShannonMinSNRdB(800, 75); req < 30 {
		t.Errorf("800G at 75 GHz requires %v dB, expected > 30", req)
	}
	// At 150 GHz the requirement drops dramatically.
	if req := ShannonMinSNRdB(800, 150); req >= 20 {
		t.Errorf("800G at 150 GHz requires %v dB, expected < 20", req)
	}
}

func TestDBConversions(t *testing.T) {
	for _, v := range []float64{0.1, 1, 2, 10, 123.4} {
		if got := FromDB(ToDB(v)); math.Abs(got-v) > 1e-9*v {
			t.Errorf("FromDB(ToDB(%v)) = %v", v, got)
		}
	}
	if ToDB(10) != 10 {
		t.Errorf("ToDB(10) = %v, want 10", ToDB(10))
	}
}

func TestPreFECBERMonotone(t *testing.T) {
	// Higher SNR → lower BER, for every constellation.
	mods := []Modulation{BPSK, QPSK, QAM8, QAM16, QAM64, QAM256, PCS(11.3)}
	for _, mod := range mods {
		prev := 1.0
		for snrDB := -5.0; snrDB <= 35; snrDB += 1 {
			ber := PreFECBER(mod, FromDB(snrDB))
			if ber > prev+1e-15 {
				t.Errorf("%s: BER increased with SNR at %v dB", mod.Name, snrDB)
			}
			if ber < 0 || ber > 0.5 {
				t.Errorf("%s: BER %v out of range at %v dB", mod.Name, ber, snrDB)
			}
			prev = ber
		}
	}
}

func TestPreFECBEROrderByModulation(t *testing.T) {
	// At a fixed SNR, higher-order constellations have higher BER (§3.1:
	// high-order formats are more susceptible to impairments).
	snr := FromDB(15)
	order := []Modulation{QPSK, QAM8, QAM16, QAM32, QAM64, QAM256}
	for i := 1; i < len(order); i++ {
		lo, hi := PreFECBER(order[i-1], snr), PreFECBER(order[i], snr)
		if hi <= lo {
			t.Errorf("BER(%s)=%v should exceed BER(%s)=%v at 15 dB",
				order[i].Name, hi, order[i-1].Name, lo)
		}
	}
}

func TestPreFECBERDegenerate(t *testing.T) {
	if got := PreFECBER(QPSK, 0); got != 0.5 {
		t.Errorf("BER at zero SNR = %v, want 0.5", got)
	}
	if got := PreFECBER(Invalid, 10); got != 0.5 {
		t.Errorf("BER for invalid modulation = %v, want 0.5", got)
	}
}

func TestPostFECBER(t *testing.T) {
	if got := PostFECBER(1e-3, FEC15); got != 0 {
		t.Errorf("post-FEC below threshold = %v, want 0", got)
	}
	if got := PostFECBER(3e-2, FEC27); got != 3e-2 {
		t.Errorf("post-FEC above threshold = %v, want pass-through", got)
	}
	// Stronger FEC corrects more.
	pre := 2e-2
	if PostFECBER(pre, FEC27) != 0 || PostFECBER(pre, FEC15) == 0 {
		t.Error("FEC27 should correct 2e-2 while FEC15 should not")
	}
}

func TestPCS(t *testing.T) {
	m := PCS(11.3)
	if m.BitsPerSymbol != 11.3 {
		t.Errorf("PCS bits = %v", m.BitsPerSymbol)
	}
	// PCS BER interpolates between the bracketing square constellations.
	snr := FromDB(18)
	lo, hi := PreFECBER(Modulation{BitsPerSymbol: 11}, snr), PreFECBER(Modulation{BitsPerSymbol: 12}, snr)
	got := PreFECBER(m, snr)
	if got < math.Min(lo, hi) || got > math.Max(lo, hi) {
		t.Errorf("PCS BER %v outside bracket [%v, %v]", got, lo, hi)
	}
}

// Property: reach derived from a required OSNR is consistent — OSNR at the
// returned reach meets the threshold, OSNR one span beyond does not.
func TestReachInversionProperty(t *testing.T) {
	l := DefaultLink()
	f := func(raw uint8) bool {
		req := 10 + float64(raw)*0.1 // 10..35.5 dB
		reach := l.MaxReachKm(req)
		if reach == 0 {
			return l.OSNRdB(l.SpanKm) < req
		}
		return l.OSNRdB(reach) >= req && l.OSNRdB(reach+l.SpanKm) < req
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Shannon capacity is monotone in both spacing and SNR.
func TestShannonMonotoneProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		w1, w2 := 25+float64(a%16)*12.5, 25+float64(b%16)*12.5
		s1, s2 := float64(a%30), float64(b%30)
		if w1 <= w2 && s1 <= s2 {
			return ShannonCapacityGbps(w1, s1) <= ShannonCapacityGbps(w2, s2)+1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
