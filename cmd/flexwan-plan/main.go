// Command flexwan-plan runs FlexWAN's network planning (Algorithm 1) on
// a built-in workload and prints the provisioning decisions.
//
// Usage:
//
//	flexwan-plan -topology tbackbone -scheme flexwan -scale 2
//	flexwan-plan -topology cernet -scheme radwan -wavelengths
package main

import (
	"flag"
	"fmt"
	"os"

	"flexwan/internal/plan"
	"flexwan/internal/spectrum"
	"flexwan/internal/transponder"
	"flexwan/internal/workload"
)

func main() {
	topo := flag.String("topology", "tbackbone", "workload: tbackbone | cernet (ignored with -file)")
	file := flag.String("file", "", "read the network from a JSON file instead of a built-in workload")
	scheme := flag.String("scheme", "flexwan", "transponders: flexwan | radwan | 100g")
	scale := flag.Float64("scale", 1, "bandwidth capacity scale")
	seed := flag.Int64("seed", 1, "workload seed")
	k := flag.Int("k", plan.DefaultK, "candidate optical paths per IP link")
	epsilon := flag.Float64("epsilon", plan.DefaultEpsilon, "spectrum weight in the objective")
	dump := flag.Bool("wavelengths", false, "print every provisioned wavelength")
	flag.Parse()

	var n workload.Network
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexwan-plan:", err)
			os.Exit(1)
		}
		n, err = workload.ReadNetwork(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexwan-plan:", err)
			os.Exit(1)
		}
	} else {
		switch *topo {
		case "tbackbone":
			n = workload.TBackbone(*seed)
		case "cernet":
			n = workload.Cernet(*seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
			os.Exit(2)
		}
	}
	n = n.Scale(*scale)

	var catalog transponder.Catalog
	switch *scheme {
	case "flexwan":
		catalog = transponder.SVT()
	case "radwan":
		catalog = transponder.RADWAN()
	case "100g":
		catalog = transponder.Fixed100G()
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	problem := plan.Problem{
		Optical: n.Optical,
		IP:      n.IP,
		Catalog: catalog,
		Grid:    spectrum.DefaultGrid(),
		K:       *k,
		Epsilon: *epsilon,
	}
	result, err := plan.Solve(problem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexwan-plan:", err)
		os.Exit(1)
	}
	if err := plan.Verify(problem, result); err != nil {
		fmt.Fprintln(os.Stderr, "flexwan-plan: verification failed:", err)
		os.Exit(1)
	}

	fmt.Printf("topology %s (%d sites, %d fibers), %d IP links, %.0f Gbps total demand at %gx\n",
		n.Name, n.Optical.NumNodes(), n.Optical.NumFibers(), len(n.IP.Links),
		float64(n.IP.TotalDemandGbps()), *scale)
	fmt.Printf("scheme %s: %d transponder pairs, %.0f GHz spectrum, objective %.2f, mean %.2f b/s/Hz\n",
		catalog.Name, result.Transponders(), result.SpectrumGHz(),
		result.Objective(*epsilon), result.MeanSpectralEfficiency())
	if !result.Feasible() {
		fmt.Printf("INFEASIBLE: %d links unserved: %v\n", len(result.Unserved), result.Unserved)
		os.Exit(1)
	}
	if *dump {
		for _, w := range result.Wavelengths {
			fmt.Printf("  %-6s path#%d %4d Gbps @ %6.1f GHz  %5.0f km (reach %5.0f)  pixels %v\n",
				w.LinkID, w.PathIndex, w.Mode.DataRateGbps, w.Mode.SpacingGHz,
				w.Path.LengthKm, w.Mode.ReachKm, w.Interval)
		}
	}
}
