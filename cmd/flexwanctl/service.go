package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"flexwan/internal/api"
	"flexwan/internal/eval"
)

// serviceCommands are the flexwand-client subcommands; anything else
// falls through to the legacy single-shot simulation flags.
var serviceCommands = map[string]bool{
	"submit": true, "status": true, "devices": true, "load": true,
}

// runService dispatches one client subcommand against a running flexwand
// service. The returned error means exit nonzero — including when a
// submitted sweep records failed scenarios.
func runService(cmd string, args []string, stdout io.Writer) error {
	switch cmd {
	case "submit":
		return runSubmit(args, stdout)
	case "status":
		return runStatus(args, stdout)
	case "devices":
		return runDevices(args, stdout)
	case "load":
		return runLoad(args, stdout)
	}
	return fmt.Errorf("flexwanctl: unknown subcommand %q", cmd)
}

func serviceClient() *http.Client {
	return &http.Client{Timeout: 2 * time.Minute}
}

// getJSON fetches url and decodes the JSON body into v, reporting the
// service's error payload on non-2xx statuses.
func getJSON(client *http.Client, url string, v interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return serviceError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func serviceError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("flexwanctl: service answered %d: %s", resp.StatusCode, e.Error)
	}
	return fmt.Errorf("flexwanctl: service answered %d", resp.StatusCode)
}

// runSubmit pushes one job and (by default) waits for its terminal
// state. Exit is nonzero unless the job ends Optimal — and, for sweep
// jobs, unless zero scenarios failed.
func runSubmit(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexwanctl submit", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8422", "flexwand base URL")
	tenant := fs.String("tenant", "default", "tenant identity (X-Tenant header)")
	typ := fs.String("type", "plan", "job type: plan | restore | sweep | drill")
	network := fs.String("network", "ring4", "topology: ring4 | ring6 | cernet | tbackbone")
	scheme := fs.String("scheme", "", "transponders: flexwan | radwan | 100g")
	k := fs.Int("k", 0, "candidate-path count (0 = planner default)")
	seed := fs.Int64("seed", 0, "demand/fault seed")
	scale := fs.Float64("scale", 0, "demand scale factor (0 = unscaled)")
	exact := fs.Bool("exact", false, "plan jobs: solve the exact MIP")
	pricing := fs.String("pricing", "", "plan jobs with -exact: dual-simplex pricing rule: dantzig | devex | steepest-edge (empty = solver default)")
	cut := fs.String("cut", "", "comma-separated fibers to cut (restore/drill)")
	deadlineMs := fs.Int64("deadline-ms", 0, "end-to-end job deadline from submission (0 = none)")
	workers := fs.Int("workers", 0, "intra-job parallelism (sweep fan-out, MIP workers)")
	wait := fs.Duration("wait", 5*time.Minute, "wait for the terminal state (0 = submit and return)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := api.JobSpec{
		Type: *typ, Network: *network, Scheme: *scheme,
		K: *k, Seed: *seed, Scale: *scale, Exact: *exact,
		Pricing: *pricing, Workers: *workers, DeadlineMs: *deadlineMs,
	}
	if *cut != "" {
		spec.CutFibers = strings.Split(*cut, ",")
	}
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", *addr+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("X-Tenant", *tenant)
	client := serviceClient()
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		defer resp.Body.Close()
		return serviceError(resp)
	}
	var view api.JobView
	err = json.NewDecoder(resp.Body).Decode(&view)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "submitted %s (%s) as %s\n", view.ID, spec.Type, view.Tenant)
	if *wait <= 0 {
		return nil
	}

	deadline := time.Now().Add(*wait)
	for !view.State.Terminal() {
		if !time.Now().Before(deadline) {
			return fmt.Errorf("flexwanctl: job %s still %s after %v", view.ID, view.State, *wait)
		}
		if err := getJSON(client, *addr+"/v1/jobs/"+view.ID+"?wait=10s", &view); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "%s: %s\n", view.ID, view.State)
	if len(view.Result) > 0 {
		fmt.Fprintf(stdout, "%s\n", view.Result)
	}
	if view.State != api.StateOptimal {
		return fmt.Errorf("flexwanctl: job %s finished %s: %s", view.ID, view.State, view.Error)
	}
	if spec.Type == "sweep" {
		var sw api.SweepResult
		if err := json.Unmarshal(view.Result, &sw); err != nil {
			return fmt.Errorf("flexwanctl: decode sweep result: %w", err)
		}
		if sw.Failed > 0 {
			return fmt.Errorf("flexwanctl: sweep recorded %d failed scenarios: %s",
				sw.Failed, strings.Join(sw.FailedIDs, ", "))
		}
	}
	return nil
}

// runStatus prints one job (with -id) or the scheduler counters.
func runStatus(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexwanctl status", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8422", "flexwand base URL")
	id := fs.String("id", "", "job ID (empty: scheduler stats)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := serviceClient()
	if *id != "" {
		var view api.JobView
		if err := getJSON(client, *addr+"/v1/jobs/"+*id, &view); err != nil {
			return err
		}
		blob, _ := json.MarshalIndent(view, "", "  ")
		fmt.Fprintf(stdout, "%s\n", blob)
		return nil
	}
	var st api.SchedStats
	if err := getJSON(client, *addr+"/v1/stats", &st); err != nil {
		return err
	}
	blob, _ := json.MarshalIndent(st, "", "  ")
	fmt.Fprintf(stdout, "%s\n", blob)
	return nil
}

// runDevices prints the fleet health table.
func runDevices(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexwanctl devices", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8422", "flexwand base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var devices []map[string]interface{}
	if err := getJSON(serviceClient(), *addr+"/v1/devices", &devices); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%-16s %-12s %-10s %-22s %s\n", "ID", "CLASS", "SITE", "ADDRESS", "SESSION")
	for _, d := range devices {
		session := "down"
		if up, _ := d["session_up"].(bool); up {
			session = "up"
		}
		fmt.Fprintf(stdout, "%-16v %-12v %-10v %-22v %s\n",
			d["id"], d["class"], d["site"], d["address"], session)
	}
	fmt.Fprintf(stdout, "%d devices\n", len(devices))
	return nil
}

// runLoad drives the multi-tenant load generator against a live service
// and writes one BENCH_service.json record. Exit is nonzero when a job
// is lost or the p99 budget is exceeded.
func runLoad(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("flexwanctl load", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8422", "flexwand base URL")
	tenants := fs.Int("tenants", 4, "concurrent tenants")
	jobs := fs.Int("jobs", 1000, "total restoration jobs across tenants")
	concurrency := fs.Int("concurrency", 16, "in-flight submissions per tenant")
	network := fs.String("network", "cernet", "backbone under load")
	k := fs.Int("k", 0, "candidate-path count (0 = planner default)")
	out := fs.String("out", "BENCH_service.json", "output path for the load record")
	p99Budget := fs.Float64("p99-budget-ms", 0, "fail when p99 latency exceeds this (0 = no budget)")
	verbose := fs.Bool("v", false, "progress logs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = func(format string, a ...interface{}) { fmt.Fprintf(stdout, format+"\n", a...) }
	}
	rec, err := eval.RunServiceLoad(eval.ServiceLoadOptions{
		Addr: *addr, Tenants: *tenants, Jobs: *jobs,
		Concurrency: *concurrency, Network: *network, K: *k, Logf: logf,
	})
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent([]*eval.ServiceLoadRecord{rec}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%d jobs, %d tenants: %.1f jobs/s, p50 %.1fms p99 %.1fms, fairness %.2f, max queue %d → %s\n",
		rec.Jobs, rec.Tenants, rec.ThroughputJobsPerSec, rec.P50Ms, rec.P99Ms, rec.FairnessRatio, rec.MaxQueueDepth, *out)
	if rec.Lost > 0 {
		return fmt.Errorf("flexwanctl: %d jobs lost under load", rec.Lost)
	}
	if *p99Budget > 0 && rec.P99Ms > *p99Budget {
		return fmt.Errorf("flexwanctl: p99 %.1fms exceeds budget %.0fms", rec.P99Ms, *p99Budget)
	}
	return nil
}
