//go:build race

package main

// raceDetectorOn reports whether this test binary was built with -race,
// so tests can skip work the detector makes an order of magnitude
// slower (exact MIP solves) without hiding their fast assertions.
const raceDetectorOn = true
