// Command flexwanctl runs a complete FlexWAN deployment simulation on one
// machine: a multi-vendor device fleet on loopback TCP, the centralized
// controller, the telemetry data stream, and staged fiber cuts with
// automatic optical restoration. It is the operational face of the
// library — what an operator's session against the real system looks
// like (§4 and §9 of the paper).
//
// Usage:
//
//	flexwanctl -demand 800 -cut f-direct
//	flexwanctl -scheme radwan -cut f-direct       # watch rigid hardware degrade
//	flexwanctl -drill ring -drill-seed 7          # seeded recovery drill
//	flexwanctl -drill all                         # full ladder → BENCH_recovery.json
//
// Against a running flexwand service (see cmd/flexwand):
//
//	flexwanctl submit -type plan -network cernet -wait 2m
//	flexwanctl submit -type restore -network cernet -cut cfib000
//	flexwanctl status                             # scheduler counters
//	flexwanctl devices                            # fleet health
//	flexwanctl load -jobs 1000 -tenants 4         # → BENCH_service.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"flexwan"
	"flexwan/internal/eval"
)

func main() {
	if len(os.Args) > 1 && serviceCommands[os.Args[1]] {
		if err := runService(os.Args[1], os.Args[2:], os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	demand := flag.Int("demand", 400, "IP link demand in Gbps (A–B)")
	scheme := flag.String("scheme", "flexwan", "transponders: flexwan | radwan | 100g")
	cut := flag.String("cut", "f-direct", "fiber to cut after startup ('' to skip)")
	txPerSite := flag.Int("transponders", 4, "transponder agents per site")
	verbose := flag.Bool("v", false, "controller logs")
	showModel := flag.Bool("model", false, "print the standard device model and exit")
	drill := flag.String("drill", "", "run seeded recovery drills instead of the demo: ring | cernet | all")
	drillSeed := flag.Int64("drill-seed", 1, "fault seed for -drill (same seed ⇒ byte-identical event log)")
	drillOut := flag.String("drill-out", "BENCH_recovery.json", "output path for -drill scorecards")
	pushWorkers := flag.Int("push-workers", 0, "config-push fan-out: 0 = one pipeline per device, 1 = legacy serial, n = bounded pool")
	pushBudget := flag.String("push-budget", "", "per-network push-time budgets for -drill, e.g. ring4=500,cernet=1000 (ms, checked against parallel records)")
	noAblation := flag.Bool("no-ablation", false, "skip the serial (push-workers=1) ablation record per drill")
	flag.Parse()

	if *drill != "" {
		if err := runDrills(*drill, *drillSeed, *drillOut, *pushWorkers, *pushBudget, !*noAblation, *verbose); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *showModel {
		model := flexwan.StandardDeviceModel()
		for _, class := range []flexwan.DeviceClass{flexwan.ClassTransponder, flexwan.ClassWSS, flexwan.ClassAmplifier} {
			spec := model[class]
			fmt.Printf("%s:\n", class)
			for _, comp := range spec.Components {
				fmt.Printf("  %-14s %s\n", comp.Name, comp.Role)
			}
			for _, edge := range spec.Workflow {
				fmt.Printf("  %s -> %s\n", edge[0], edge[1])
			}
		}
		return
	}

	var catalog flexwan.Catalog
	switch *scheme {
	case "flexwan":
		catalog = flexwan.SVT()
	case "radwan":
		catalog = flexwan.RADWAN()
	case "100g":
		catalog = flexwan.Fixed100G()
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *scheme)
		os.Exit(2)
	}

	grid := flexwan.DefaultGrid()
	fabric := flexwan.NewFabric(flexwan.DefaultLink())
	optical := flexwan.NewOptical()
	fibers := []struct {
		id   string
		a, b flexwan.NodeID
		km   float64
	}{
		{"f-direct", "A", "B", 600},
		{"f-west", "A", "C", 500},
		{"f-east", "C", "B", 700},
	}
	for _, f := range fibers {
		if err := optical.AddFiber(f.id, f.a, f.b, f.km); err != nil {
			log.Fatal(err)
		}
		if err := fabric.AddFiber(f.id, f.km); err != nil {
			log.Fatal(err)
		}
	}
	ip := &flexwan.IPTopology{}
	if err := ip.AddLink(flexwan.IPLink{ID: "a-b", A: "A", B: "B", DemandGbps: *demand}); err != nil {
		log.Fatal(err)
	}

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = log.Printf
	}
	ctrl, err := flexwan.NewController(flexwan.ControllerConfig{
		Optical: optical, IP: ip, Catalog: catalog, Grid: grid, K: 3, Logf: logf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctrl.Close()
	ctrl.SetPushWorkers(*pushWorkers)

	var sources []flexwan.TelemetrySource
	register := func(desc flexwan.DeviceDescriptor, start func(string) (string, error)) {
		addr, err := start("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		desc.Address = addr
		if err := ctrl.DevMgr().Register(desc); err != nil {
			log.Fatal(err)
		}
		session, err := flexwan.DialDevice(addr)
		if err != nil {
			log.Fatal(err)
		}
		sources = append(sources, flexwan.TelemetrySource{Desc: desc, Client: session})
	}

	for _, site := range []flexwan.NodeID{"A", "B", "C"} {
		for i := 0; i < *txPerSite; i++ {
			desc := flexwan.DeviceDescriptor{
				ID: fmt.Sprintf("tx-%s-%d", site, i), Class: flexwan.ClassTransponder,
				Vendor: "vendor-A", Address: "pending", Site: string(site),
			}
			agent := flexwan.NewTransponderAgent(desc, grid, catalog, fabric)
			defer agent.Close()
			register(desc, agent.Start)
		}
	}
	for _, f := range fibers {
		wssDesc := flexwan.DeviceDescriptor{
			ID: "wss-" + f.id, Class: flexwan.ClassWSS,
			Vendor: "vendor-B", Address: "pending", Site: string(f.a), Fiber: f.id,
		}
		wss := flexwan.NewWSSAgent(wssDesc, grid)
		defer wss.Close()
		register(wssDesc, wss.Start)
		ampDesc := flexwan.DeviceDescriptor{
			ID: "edfa-" + f.id, Class: flexwan.ClassAmplifier,
			Vendor: "vendor-C", Address: "pending", Site: string(f.a), Fiber: f.id,
		}
		amp := flexwan.NewAmplifierAgent(ampDesc, fabric, f.id)
		defer amp.Close()
		register(ampDesc, amp.Start)
	}
	fmt.Printf("device fleet: %d devices registered\n", len(sources))

	result, err := ctrl.PlanNetwork()
	if err != nil {
		log.Fatal(err)
	}
	if !result.Feasible() {
		log.Fatalf("plan infeasible: %v unserved", result.Unserved)
	}
	if err := ctrl.Apply(result); err != nil {
		log.Fatal(err)
	}
	report, err := ctrl.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan applied: %d wavelengths, %.0f GHz; audit clean = %v\n",
		result.Transponders(), result.SpectrumGHz(), report.Clean())
	fmt.Printf("live capacity: %v\n", ctrl.LiveCapacityGbps())

	if *cut == "" {
		return
	}

	store := flexwan.NewTelemetryStore(4096)
	collector := flexwan.NewCollector(store, 100*time.Millisecond, sources)
	collector.Run()
	defer collector.Stop()

	done := make(chan *flexwan.RestoreResult, 1)
	go ctrl.Watch(collector.Events(), func(res *flexwan.RestoreResult) { done <- res })

	time.Sleep(300 * time.Millisecond)
	fmt.Printf("\n*** cutting %s ***\n", *cut)
	start := time.Now()
	fabric.Cut(*cut)

	select {
	case res := <-done:
		fmt.Printf("detected + restored in %v: revived %d of %d Gbps (capability %.2f)\n",
			time.Since(start).Round(time.Millisecond), res.RestoredGbps, res.AffectedGbps, res.Capability())
	case <-time.After(10 * time.Second):
		log.Fatal("restoration did not complete within 10s")
	}
	report, err = ctrl.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-restoration audit clean = %v; live capacity: %v\n",
		report.Clean(), ctrl.LiveCapacityGbps())
}

// runDrills executes the seeded recovery-drill ladder — the chaos
// engine's closed-loop fault scenarios — and writes the scorecards to
// the BENCH_recovery.json output. Unless disabled, every drill also
// runs a serial (push-workers=1) ablation record; the per-network push
// budgets are enforced against the parallel records only.
func runDrills(which string, seed int64, out string, pushWorkers int, pushBudget string, ablation, verbose bool) error {
	var drills []eval.RecoveryDrill
	for _, d := range eval.RecoveryDrillLadder(seed) {
		name := strings.ToLower(d.Network.Name)
		if which == "all" ||
			(which == "ring" && strings.HasPrefix(name, "ring")) ||
			(which == "cernet" && name == "cernet") {
			drills = append(drills, d)
		}
	}
	if len(drills) == 0 {
		return fmt.Errorf("flexwanctl: no drills match -drill %q (want ring, cernet or all)", which)
	}
	budgets, err := parsePushBudgets(pushBudget)
	if err != nil {
		return err
	}
	logf := func(string, ...interface{}) {}
	if verbose {
		logf = log.Printf
	}
	reports, err := eval.RunRecoveryDrills(drills, eval.RecoveryRunOptions{
		PushWorkers: pushWorkers, SerialAblation: ablation, Logf: logf,
	})
	if err != nil {
		return err
	}
	var overruns []string
	for _, r := range reports {
		fmt.Printf("%-26s %-10s workers=%d restored %d/%d Gbps  oracle=%v audit=%v  detect=%.1fms solve=%.1fms push=%.1fms  faults=%d  log=%.12s\n",
			r.Name, r.Network, r.PushWorkers, r.RestoredGbps, r.AffectedGbps, r.OracleMatch, r.AuditClean,
			r.DetectMs, r.SolveMs, r.PushMs, r.FaultsInjected, r.LogHash)
		if budget, ok := budgets[strings.ToLower(r.Network)]; ok && r.PushWorkers != 1 && r.PushMs > budget {
			overruns = append(overruns,
				fmt.Sprintf("%s on %s pushed in %.1fms, budget %.0fms", r.Name, r.Network, r.PushMs, budget))
		}
	}
	blob, err := json.MarshalIndent(reports, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d drill records to %s\n", len(reports), out)
	if len(overruns) > 0 {
		return fmt.Errorf("flexwanctl: push-time budget exceeded:\n  %s", strings.Join(overruns, "\n  "))
	}
	// A drill that diverged from the offline oracle or left the fleet
	// config inconsistent is a failure — the exit code must say so even
	// though the scorecards were written.
	if failures := drillFailures(reports); len(failures) > 0 {
		return fmt.Errorf("flexwanctl: %d drill(s) failed:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// drillFailures lists the drill records that failed their closed-loop
// checks: restoration diverging from the offline oracle, or a
// post-recovery audit finding the fleet out of sync with intent.
func drillFailures(reports []*eval.RecoveryBenchRecord) []string {
	var failures []string
	for _, r := range reports {
		if !r.OracleMatch || !r.AuditClean {
			failures = append(failures,
				fmt.Sprintf("%s on %s (workers=%d): oracle_match=%v audit_clean=%v",
					r.Name, r.Network, r.PushWorkers, r.OracleMatch, r.AuditClean))
		}
	}
	return failures
}

// parsePushBudgets parses "network=ms,network=ms" into a lower-cased
// budget map.
func parsePushBudgets(s string) (map[string]float64, error) {
	out := make(map[string]float64)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("flexwanctl: -push-budget entry %q is not network=ms", part)
		}
		var ms float64
		if _, err := fmt.Sscanf(val, "%g", &ms); err != nil || ms <= 0 {
			return nil, fmt.Errorf("flexwanctl: -push-budget entry %q has no positive ms value", part)
		}
		out[strings.ToLower(strings.TrimSpace(name))] = ms
	}
	return out, nil
}
