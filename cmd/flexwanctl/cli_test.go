package main

import (
	"bytes"
	"context"
	"encoding/json"

	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flexwan/internal/api"
	"flexwan/internal/eval"
)

// TestDrillFailuresExit: a drill ladder whose records include an oracle
// divergence or a dirty audit must surface as failures (→ nonzero exit),
// while all-clean ladders stay silent (→ exit 0).
func TestDrillFailuresExit(t *testing.T) {
	clean := []*eval.RecoveryBenchRecord{
		{Name: "cut", Network: "ring4", OracleMatch: true, AuditClean: true},
		{Name: "crash", Network: "ring6", OracleMatch: true, AuditClean: true},
	}
	if got := drillFailures(clean); len(got) != 0 {
		t.Fatalf("clean ladder reported failures: %v", got)
	}

	bad := []*eval.RecoveryBenchRecord{
		{Name: "cut", Network: "ring4", OracleMatch: true, AuditClean: true},
		{Name: "crash", Network: "ring6", OracleMatch: false, AuditClean: true},
		{Name: "flap", Network: "cernet", OracleMatch: true, AuditClean: false},
	}
	got := drillFailures(bad)
	if len(got) != 2 {
		t.Fatalf("drillFailures = %v, want 2 entries", got)
	}
	if !strings.Contains(got[0], "oracle_match=false") || !strings.Contains(got[1], "audit_clean=false") {
		t.Fatalf("failure lines don't name the failed check: %v", got)
	}
}

func startService(t *testing.T, opts api.Options) *httptest.Server {
	t.Helper()
	s := api.New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return ts
}

// TestSubmitCLI: the submit subcommand against a live in-process service
// — exit 0 with the terminal state printed for a good plan job, exit
// nonzero for a job that fails.
func TestSubmitCLI(t *testing.T) {
	ts := startService(t, api.Options{QueueDepth: 16, Workers: 2})

	var out bytes.Buffer
	err := runService("submit", []string{
		"-addr", ts.URL, "-type", "plan", "-network", "ring4", "-wait", "2m",
	}, &out)
	if err != nil {
		t.Fatalf("submit plan: %v (output %q)", err, out.String())
	}
	if !strings.Contains(out.String(), "Optimal") {
		t.Fatalf("submit output %q does not report Optimal", out.String())
	}

	out.Reset()
	err = runService("submit", []string{
		"-addr", ts.URL, "-type", "plan", "-network", "atlantis", "-wait", "2m",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "Failed") {
		t.Fatalf("submit to unknown network: err = %v, want Failed", err)
	}

	// status with the job ID round-trips.
	out.Reset()
	if err := runService("status", []string{"-addr", ts.URL, "-id", "j-000001"}, &out); err != nil {
		t.Fatalf("status: %v", err)
	}
	if !strings.Contains(out.String(), `"j-000001"`) {
		t.Fatalf("status output %q missing job ID", out.String())
	}

	// devices without a fleet: the 503 becomes a nonzero exit.
	if err := runService("devices", []string{"-addr", ts.URL}, &out); err == nil {
		t.Fatalf("devices without fleet: want error")
	}
}

// TestSubmitExactPricingCLI: -pricing rides an exact plan job end to end
// — the chosen rule must show up in the job's solver stats — and an
// unknown rule must fail the job (nonzero exit), mirroring the unknown-
// network contract.
func TestSubmitExactPricingCLI(t *testing.T) {
	ts := startService(t, api.Options{QueueDepth: 16, Workers: 2})

	var out bytes.Buffer
	if raceDetectorOn {
		// The exact MIP solve is ~20× slower under the detector and has
		// no concurrency of its own worth racing; the rejection path
		// below still covers the flag threading.
		t.Log("race detector on: skipping the full exact-solve submit")
	} else {
		err := runService("submit", []string{
			"-addr", ts.URL, "-type", "plan", "-network", "ring4", "-k", "1", "-scale", "0.25",
			"-exact", "-pricing", "steepest-edge", "-wait", "5m",
		}, &out)
		if err != nil {
			t.Fatalf("submit exact plan with -pricing: %v (output %q)", err, out.String())
		}
		if !strings.Contains(out.String(), `"PricingMode": "steepest-edge"`) {
			t.Fatalf("submit output %q does not record the requested pricing rule", out.String())
		}
	}

	out.Reset()
	err := runService("submit", []string{
		"-addr", ts.URL, "-type", "plan", "-network", "ring4", "-k", "1", "-scale", "0.25",
		"-exact", "-pricing", "newton", "-wait", "2m",
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "Failed") {
		t.Fatalf("submit with unknown pricing rule: err = %v, want Failed", err)
	}
}

// TestSubmitSweepFailedScenariosExit: a sweep job that completes but
// records failed scenarios must exit nonzero — the service-era
// equivalent of the drill exit-code contract.
func TestSubmitSweepFailedScenariosExit(t *testing.T) {
	mux := http.NewServeMux()
	job := api.JobView{ID: "j-000001", Tenant: "default", State: api.StateQueued}
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(job)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		done := job
		done.State = api.StateOptimal
		done.Result = json.RawMessage(`{"scenarios":5,"failed":2,"failed_ids":["cut-f1","cut-f9"],"mean_capability":0.71}`)
		_ = json.NewEncoder(w).Encode(done)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out bytes.Buffer
	err := runService("submit", []string{
		"-addr", ts.URL, "-type", "sweep", "-network", "cernet",
	}, &out)
	if err == nil {
		t.Fatalf("sweep with failed scenarios exited 0 (output %q)", out.String())
	}
	for _, want := range []string{"2 failed scenarios", "cut-f1", "cut-f9"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("sweep error %q missing %q", err, want)
		}
	}
}

// TestServiceLoadSmoke: the load generator end to end against an
// in-process service — small scale, but the same code path the
// BENCH_service.json run uses, including the zero-lost check.
func TestServiceLoadSmoke(t *testing.T) {
	ts := startService(t, api.Options{QueueDepth: 32, Workers: 2})
	rec, err := eval.RunServiceLoad(eval.ServiceLoadOptions{
		Addr: ts.URL, Tenants: 2, Jobs: 8, Concurrency: 2, Network: "ring4",
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if rec.Lost != 0 {
		t.Fatalf("lost %d of %d jobs", rec.Lost, rec.Jobs)
	}
	if rec.Optimal != 8 {
		t.Fatalf("optimal = %d, want 8", rec.Optimal)
	}
	if rec.P99Ms <= 0 || rec.ThroughputJobsPerSec <= 0 {
		t.Fatalf("degenerate record: %+v", rec)
	}
	if len(rec.PerTenantMeanMs) != 2 {
		t.Fatalf("per-tenant means = %v, want 2 tenants", rec.PerTenantMeanMs)
	}
}
