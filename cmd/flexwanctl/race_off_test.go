//go:build !race

package main

const raceDetectorOn = false
