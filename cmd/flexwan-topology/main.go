// Command flexwan-topology exports the built-in evaluation workloads as
// JSON network files (the format flexwan-plan's -file flag consumes), so
// users can inspect or edit them and feed variants back into the tools.
//
// Usage:
//
//	flexwan-topology -topology cernet > cernet.json
//	flexwan-topology -topology tbackbone -seed 7 -scale 2 > t2.json
package main

import (
	"flag"
	"fmt"
	"os"

	"flexwan/internal/workload"
)

func main() {
	topo := flag.String("topology", "tbackbone", "workload: tbackbone | cernet")
	seed := flag.Int64("seed", 1, "workload seed")
	scale := flag.Float64("scale", 1, "demand scale factor")
	stats := flag.Bool("stats", false, "print summary statistics to stderr")
	flag.Parse()

	var n workload.Network
	switch *topo {
	case "tbackbone":
		n = workload.TBackbone(*seed)
	case "cernet":
		n = workload.Cernet(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topo)
		os.Exit(2)
	}
	n = n.Scale(*scale)

	if *stats {
		lengths := n.PathLengthsKm()
		shortest, longest := lengths[0], lengths[0]
		for _, l := range lengths {
			if l < shortest {
				shortest = l
			}
			if l > longest {
				longest = l
			}
		}
		fmt.Fprintf(os.Stderr, "%s: %d sites, %d fibers, %d IP links, %d Gbps total demand, paths %.0f–%.0f km\n",
			n.Name, n.Optical.NumNodes(), n.Optical.NumFibers(), len(n.IP.Links),
			n.IP.TotalDemandGbps(), shortest, longest)
	}
	if err := workload.WriteNetwork(os.Stdout, n); err != nil {
		fmt.Fprintln(os.Stderr, "flexwan-topology:", err)
		os.Exit(1)
	}
}
