// Command flexwan-experiments regenerates every table and figure of the
// FlexWAN paper's motivation and evaluation sections from this
// reproduction. Output is the same rows/series the paper plots; compare
// shapes against EXPERIMENTS.md.
//
// Usage:
//
//	flexwan-experiments                 # run everything
//	flexwan-experiments -fig 12,16      # selected figures
//	flexwan-experiments -seed 7         # different synthetic T-backbone
//	flexwan-experiments -workers 8      # sweep parallelism
//	                                      (0 = all cores, 1 = sequential)
//	flexwan-experiments -fig exact -solver-workers 4
//	                                    # exact cross-check, parallel B&B
//	flexwan-experiments -fig exact -branching most-fractional
//	                                    # branching-rule ablation
//	flexwan-experiments -fig exact -pricing steepest-edge
//	                                    # dual-simplex pricing ablation
//	flexwan-experiments -fig bench      # solver benchmarks → BENCH_solver.json
//	flexwan-experiments -fig bench -cpuprofile cpu.pprof -memprofile mem.pprof
//	                                    # profile any mode with pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"flexwan/internal/eval"
	"flexwan/internal/solver"
	"flexwan/internal/workload"
)

func main() {
	figFlag := flag.String("fig", "all", "comma-separated figures to run: 2a,2b,3,table2,gn,12,13a,13b,14,15a,15b,16,prob,headline,exact or 'all'; 'bench' runs solver benchmarks (never part of 'all')")
	seed := flag.Int64("seed", 1, "random seed for the synthetic T-backbone")
	csvDir := flag.String("csv", "", "also write plotting-ready CSV files into this directory")
	workers := flag.Int("workers", 0, "concurrent scenario/plan solves per sweep (0 = all cores, 1 = sequential)")
	solverWorkers := flag.Int("solver-workers", 0, "branch-and-bound workers per exact MIP solve (0 = all cores)")
	branching := flag.String("branching", string(solver.BranchPseudocost), "branch-and-bound variable selection for the 'exact' mode: pseudocost or most-fractional ('bench' always records both)")
	pricing := flag.String("pricing", string(solver.PricingDevex), "dual-simplex pricing rule for the 'exact' mode: dantzig, devex, or steepest-edge ('bench' records the dantzig ablation alongside the devex default)")
	noPresolve := flag.Bool("no-presolve", false, "disable the presolve reductions in the 'exact' mode ('bench' always records both)")
	benchOut := flag.String("bench-out", "BENCH_solver.json", "output path for the 'bench' mode record")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (captured at exit, after a GC) to this file")
	flag.Parse()

	rule := solver.BranchRule(*branching)
	if rule != solver.BranchPseudocost && rule != solver.BranchMostFractional {
		fmt.Fprintf(os.Stderr, "flexwan-experiments: unknown -branching %q (want %q or %q)\n",
			*branching, solver.BranchPseudocost, solver.BranchMostFractional)
		os.Exit(1)
	}
	priceRule := solver.PricingRule(*pricing)
	if priceRule != solver.PricingDantzig && priceRule != solver.PricingDevex && priceRule != solver.PricingSteepestEdge {
		fmt.Fprintf(os.Stderr, "flexwan-experiments: unknown -pricing %q (want %q, %q, or %q)\n",
			*pricing, solver.PricingDantzig, solver.PricingDevex, solver.PricingSteepestEdge)
		os.Exit(1)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(f))] = true
	}
	all := want["all"]
	run := func(name string) bool { return all || want[name] }

	stopProfiles := startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()

	tb := workload.TBackbone(*seed)
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "flexwan-experiments:", err)
		stopProfiles()
		os.Exit(1)
	}
	writeCSV := func(name string, data eval.CSVData) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fail(err)
		}
		if err := eval.WriteCSV(f, data); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	if run("2a") {
		f := eval.Fig2aPathLengthDistribution(tb)
		fmt.Println(f)
		writeCSV("fig2a.csv", f)
	}
	if run("2b") {
		f := eval.Fig2bMaxRateVsDistance()
		fmt.Println(f)
		writeCSV("fig2b.csv", f)
	}
	if run("3") {
		f := eval.Fig3Provision800G()
		fmt.Println(f)
		writeCSV("fig3.csv", f)
	}
	if run("table2") || run("11") {
		rows := eval.Table2TestbedSweep()
		fmt.Println(eval.Table2String(rows))
		writeCSV("table2.csv", eval.Table2CSV(rows))
	}
	if run("gn") {
		rows := eval.GNCrossCheck()
		fmt.Println(eval.GNCheckString(rows))
		writeCSV("gncheck.csv", eval.GNCheckCSV(rows))
		r, err := eval.ReachSensitivityStudy(tb)
		if err != nil {
			fail(err)
		}
		fmt.Println(r)
	}
	if run("12") {
		f, err := eval.Fig12HardwareVsScale(tb, []float64{1, 2, 3, 4, 5, 6, 7, 8}, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
		writeCSV("fig12.csv", f)
	}
	if run("headline") || run("12") {
		s, err := eval.HeadlineSavings(tb, 1)
		if err != nil {
			fail(err)
		}
		fmt.Println(s)
	}
	if run("13a") || run("13b") || run("13") {
		ce := workload.Cernet(*seed)
		if run("13a") || run("13") {
			f := eval.Fig13aWeightedPathLengths(tb, ce)
			fmt.Println(f)
			writeCSV("fig13a.csv", f)
		}
		if run("13b") || run("13") {
			f, err := eval.Fig13bTopologyGains(tb, ce)
			if err != nil {
				fail(err)
			}
			fmt.Println(f)
		}
	}
	if run("14") {
		f, err := eval.Fig14WavelengthDistributions(tb)
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
		writeCSV("fig14.csv", f)
	}
	if run("15a") {
		f, err := eval.Fig15aRestoredPathGaps(tb, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
		writeCSV("fig15a.csv", f)
	}
	if run("15b") {
		f, err := eval.Fig15bRestorationVsScale(tb, []float64{1, 2, 3, 4, 5}, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
		writeCSV("fig15b.csv", f)
	}
	if run("16") {
		for _, scale := range []float64{1, 5} {
			f, err := eval.Fig16RestorationCDF(tb, scale, *workers)
			if err != nil {
				fail(err)
			}
			fmt.Println(f)
			writeCSV(fmt.Sprintf("fig16_scale%g.csv", scale), f)
		}
	}
	if run("prob") {
		f, err := eval.ProbabilisticRestorationSweep(tb, 1, *seed, 40, 0.3, *workers)
		if err != nil {
			fail(err)
		}
		fmt.Println(f)
	}
	if run("exact") {
		rows, err := eval.ExactCrossCheck([]int{16, 20, 24}, *solverWorkers, rule, priceRule, *noPresolve)
		if err != nil {
			fail(err)
		}
		fmt.Println(eval.ExactCheckString(rows))
	}
	// Solver benchmarks are expensive and machine-dependent, so they run
	// only when asked for explicitly — never as part of "all".
	if want["bench"] {
		counts := eval.SolverBenchWorkerCounts()
		if *solverWorkers > 0 {
			counts = []int{1, *solverWorkers}
		}
		bench, err := eval.SolverBenchmarks(eval.DefaultSolverBenchInstances(), counts, 3, 300*time.Millisecond)
		if err != nil {
			fail(err)
		}
		fmt.Println(bench)
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			fail(err)
		}
		fmt.Println("wrote", *benchOut)
	}
}

// startProfiles begins CPU profiling (when cpuPath is set) and returns a
// stop function that flushes the CPU profile and writes the heap profile
// (when memPath is set). The stop function is idempotent and runs on both
// the normal and the fail exit path — os.Exit skips deferred calls, so an
// aborted run would otherwise leave a truncated, unusable CPU profile.
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flexwan-experiments:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "flexwan-experiments:", err)
			os.Exit(1)
		}
		cpuFile = f
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "flexwan-experiments:", err)
				}
			}
			if memPath == "" {
				return
			}
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flexwan-experiments:", err)
				return
			}
			runtime.GC() // settle the heap so the profile shows live allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "flexwan-experiments:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "flexwan-experiments:", err)
			}
		})
	}
}
