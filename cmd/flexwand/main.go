// Command flexwand is the FlexWAN controller daemon: a persistent,
// multi-tenant HTTP/JSON service over the planner, restorer, chaos
// drills, and (optionally) a live device fleet. Where flexwanctl
// rebuilds the world per invocation, flexwand keeps it resident — base
// plans cached, one bounded solver pool shared fairly across tenants,
// every config change audited in the versioned store.
//
// Usage:
//
//	flexwand                                  # listen on 127.0.0.1:8422
//	flexwand -listen :9000 -workers 8
//	flexwand -fleet ring4                     # stand up a live device fleet
//	flexwand -addr-file /tmp/flexwand.addr    # write the bound address (CI)
//
// Then, from any HTTP client:
//
//	curl -XPOST localhost:8422/v1/jobs -d '{"type":"plan","network":"cernet"}'
//	curl 'localhost:8422/v1/jobs/j-000001?wait=30s'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexwan/internal/api"
	"flexwan/internal/chaos"
	"flexwan/internal/controller"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8422", "host:port to serve the v1 API on (port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for CI and scripts)")
	fleet := flag.String("fleet", "", "stand up a live loopback device fleet on this network: ring4 | ring6 | cernet | tbackbone")
	workers := flag.Int("workers", 0, "job-execution workers shared across tenants (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 256, "admission-queue bound; submissions past it get 429")
	k := flag.Int("k", 3, "candidate-path count for the fleet's base plan")
	verbose := flag.Bool("v", false, "service and controller logs")
	flag.Parse()

	if err := run(*listen, *addrFile, *fleet, *workers, *queueDepth, *k, *verbose); err != nil {
		log.Fatal(err)
	}
}

func run(listen, addrFile, fleet string, workers, queueDepth, k int, verbose bool) error {
	logf := func(string, ...interface{}) {}
	if verbose {
		logf = log.Printf
	}

	// One store across the API and the fleet controller: the testbed's
	// initial Apply becomes config version 1, and every drill restoration
	// appends to the same audit history /v1/configs serves.
	store := controller.NewMemStore()
	var ctrl *controller.Controller
	if fleet != "" {
		n, err := api.ResolveNetwork(fleet, 0, 1)
		if err != nil {
			return err
		}
		log.Printf("deploying %s device fleet...", n.Name)
		tb, err := chaos.NewTestbed(n, chaos.Options{
			K: k, ConfigStore: store, Actor: "flexwand", Logf: logf,
		})
		if err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
		defer tb.Close()
		ctrl = tb.Ctrl
		log.Printf("fleet up: %d transponder agents, plan applied (%d wavelengths)",
			len(tb.Transponders), len(tb.Plan.Wavelengths))
	}

	srv := api.New(api.Options{
		QueueDepth: queueDepth,
		Workers:    workers,
		Controller: ctrl,
		Store:      store,
		Logf:       logf,
	})

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(addr+"\n"), 0o644); err != nil {
			return err
		}
	}
	log.Printf("flexwand serving v1 API on http://%s", addr)

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful stop: close the listener, drain the scheduler (queued jobs
	// finish Canceled with an explicit reason, in-flight jobs complete),
	// then let in-progress HTTP responses flush.
	log.Printf("flexwand shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("scheduler drain: %v", err)
	}
	return hs.Shutdown(shutCtx)
}
