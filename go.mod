module flexwan

go 1.22
