// Package flexwan is the public API of the FlexWAN reproduction — a
// flexible optical WAN infrastructure with spacing-variable transponders
// (SVTs), a spectrum-sliced optical line system, a centralized
// vendor-agnostic controller, and the cost-minimizing network planning
// and capacity-maximizing optical restoration algorithms of the SIGCOMM
// 2023 paper "FlexWAN: Software Hardware Co-design for Cost-Effective
// and Resilient Optical Backbones".
//
// The package re-exports the stable surface of the internal packages:
//
//   - hardware models: transponder catalogs (SVT / RADWAN BVT / fixed
//     100G), the pixelated spectrum grid, and the physical-layer link
//     model;
//   - topology: optical multigraphs with K-shortest-path routing and the
//     IP demand layer;
//   - algorithms: network planning (Algorithm 1, heuristic and exact MIP)
//     and optical restoration (§8);
//   - control plane: simulated multi-vendor device agents speaking a
//     NETCONF-like protocol, the telemetry data stream, and the
//     centralized controller;
//   - evaluation: workload generators and the harness regenerating every
//     table and figure of the paper.
//
// See examples/quickstart for the five-minute tour.
package flexwan

import (
	"flexwan/internal/phy"
	"flexwan/internal/plan"
	"flexwan/internal/restore"
	"flexwan/internal/solver"
	"flexwan/internal/spectrum"
	"flexwan/internal/topology"
	"flexwan/internal/transponder"
)

// Spectrum model (internal/spectrum).
type (
	// Grid is the pixelated spectrum of a fiber (C-band / 12.5 GHz by
	// default).
	Grid = spectrum.Grid
	// Interval is a contiguous pixel range occupied by one wavelength.
	Interval = spectrum.Interval
	// SpectrumAllocator tracks conflict-free, consistent spectrum use
	// across fibers.
	SpectrumAllocator = spectrum.Allocator
	// FiberID names a fiber in the allocator.
	FiberID = spectrum.FiberID
	// Fit selects first-fit or best-fit placement.
	Fit = spectrum.Fit
)

// Spectrum constructors and constants.
var (
	DefaultGrid  = spectrum.DefaultGrid
	NewGrid      = spectrum.NewGrid
	NewAllocator = spectrum.NewAllocator
)

// Placement strategies.
const (
	FirstFit = spectrum.FirstFit
	BestFit  = spectrum.BestFit
)

// Physical layer (internal/phy).
type (
	// LinkModel is the amplified-line OSNR budget.
	LinkModel = phy.LinkModel
	// Modulation is a DSP constellation.
	Modulation = phy.Modulation
	// FEC is a forward-error-correction configuration.
	FEC = phy.FEC
)

// GNParams is the Gaussian-noise nonlinear propagation model — the
// first-principles reach estimator cross-checking Table 2.
type GNParams = phy.GNParams

// Physical-layer helpers.
var (
	DefaultLink         = phy.DefaultLink
	ShannonCapacityGbps = phy.ShannonCapacityGbps
	ShannonMinSNRdB     = phy.ShannonMinSNRdB
	DefaultGN           = phy.DefaultGN
	RequiredSNRdB       = phy.RequiredSNRdB
)

// Transponders (internal/transponder).
type (
	// Mode is one (rate, spacing, reach) operating point.
	Mode = transponder.Mode
	// Catalog is a transponder family's mode set.
	Catalog = transponder.Catalog
	// Provision is a mode multiset covering one demand.
	Provision = transponder.Provision
)

// The three transponder families the paper compares.
var (
	// SVT is FlexWAN's spacing-variable transponder (Table 2).
	SVT = transponder.SVT
	// RADWAN is the rate-adaptive BVT baseline.
	RADWAN = transponder.RADWAN
	// Fixed100G is the traditional fixed-grid 100G baseline.
	Fixed100G = transponder.Fixed100G
)

// Topology (internal/topology).
type (
	// Optical is the ROADM-and-fiber multigraph.
	Optical = topology.Optical
	// NodeID names a ROADM site.
	NodeID = topology.NodeID
	// Fiber is one fiber segment.
	Fiber = topology.Fiber
	// Path is a loopless optical path.
	Path = topology.Path
	// IPLink is an IP-layer demand.
	IPLink = topology.IPLink
	// IPTopology is the demand set.
	IPTopology = topology.IPTopology
)

// NewOptical returns an empty optical topology.
var NewOptical = topology.New

// Planning (internal/plan — Algorithm 1).
type (
	// PlanProblem is one planning instance.
	PlanProblem = plan.Problem
	// PlanResult is a complete plan.
	PlanResult = plan.Result
	// Wavelength is one provisioned channel.
	Wavelength = plan.Wavelength
	// LinkPlan summarizes one link's provisioning.
	LinkPlan = plan.LinkPlan
)

// Planning entry points.
var (
	// Plan runs the scalable planning heuristic.
	Plan = plan.Solve
	// PlanExact solves the paper's MIP with the built-in
	// branch-and-bound (small/medium instances).
	PlanExact = plan.SolveExact
	// VerifyPlan re-checks every Algorithm 1 constraint on a result.
	VerifyPlan = plan.Verify
	// ExtendPlan provisions additional capacity incrementally without
	// disturbing live wavelengths (§9 smooth evolution).
	ExtendPlan = plan.Extend
	// DecommissionLink releases all of a link's wavelengths and spectrum.
	DecommissionLink = plan.Decommission
	// Defragment compacts spectrum with make-before-break retunes.
	Defragment = plan.Defragment
)

// Restoration (internal/restore — §8).
type (
	// RestoreProblem is one restoration instance.
	RestoreProblem = restore.Problem
	// RestoreResult is the outcome for one failure scenario.
	RestoreResult = restore.Result
	// Scenario is one fiber-cut case.
	Scenario = restore.Scenario
	// Restored is one re-established channel.
	Restored = restore.Restored
	// SweepResult aggregates restoration over a scenario set.
	SweepResult = restore.SweepResult
	// SweepOptions tunes a scenario sweep (worker count, cancellation).
	SweepOptions = restore.SweepOptions
	// ScenarioError records one failed scenario within a sweep.
	ScenarioError = restore.ScenarioError
)

// Restoration entry points.
var (
	// Restore runs the restoration heuristic for one scenario.
	Restore = restore.Solve
	// RestoreExact solves the §8 MIP exactly.
	RestoreExact = restore.SolveExact
	// RestoreSweep restores every scenario against one base plan,
	// solving scenarios on all cores.
	RestoreSweep = restore.Sweep
	// RestoreSweepWithOptions is RestoreSweep with an explicit worker
	// count and cancellation context.
	RestoreSweepWithOptions = restore.SweepWithOptions
	// SingleFiberScenarios enumerates all 1-failure cases.
	SingleFiberScenarios = restore.SingleFiberScenarios
	// PlusSpares computes FlexWAN+ spare transponders.
	PlusSpares = restore.PlusSpares
)

// Solver (internal/solver — the Gurobi substitute).
type (
	// SolverOptions tunes the branch-and-bound.
	SolverOptions = solver.Options
	// MIPModel is a mixed-integer program under construction.
	MIPModel = solver.Model
	// MIPSolution is a solve outcome.
	MIPSolution = solver.Solution
	// Term is one coefficient·variable product.
	Term = solver.Term
	// VarID indexes a model variable.
	VarID = solver.VarID
	// Sense selects minimization or maximization.
	Sense = solver.Sense
	// Rel is a constraint relation.
	Rel = solver.Rel
	// BranchRule selects the branch-and-bound variable-selection rule
	// (SolverOptions.Branching).
	BranchRule = solver.BranchRule
	// PricingRule selects the dual-simplex leaving-row pricing rule
	// (SolverOptions.Pricing).
	PricingRule = solver.PricingRule
)

// NewMIPModel starts an empty optimization model.
var NewMIPModel = solver.NewModel

// Optimization senses, relations, and branching rules.
const (
	MinimizeObjective = solver.Minimize
	MaximizeObjective = solver.Maximize
	RelLE             = solver.LE
	RelGE             = solver.GE
	RelEQ             = solver.EQ
	// BranchPseudocost (the default) scores branch candidates by
	// observed objective degradation; BranchMostFractional picks the
	// variable closest to half-integral.
	BranchPseudocost     = solver.BranchPseudocost
	BranchMostFractional = solver.BranchMostFractional
	// Dual-simplex pricing rules: PricingDevex (the default) maintains
	// cheap approximate reference weights, PricingSteepestEdge exact
	// ‖B⁻ᵀe_i‖² weights (one extra FTRAN per pivot), PricingDantzig
	// prices by raw violation only.
	PricingDantzig      = solver.PricingDantzig
	PricingDevex        = solver.PricingDevex
	PricingSteepestEdge = solver.PricingSteepestEdge
)
